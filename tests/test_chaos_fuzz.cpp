// Chaos subsystem tests: repro serialization round-trips, fuzzer
// determinism & validity, the differential oracle's clean path, and the
// negative loop — a seeded invariant violation must be caught, shrunk,
// serialized, and replayed from the artifact to the same failure class.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/chaos/fuzzer.h"
#include "sim/chaos/oracle.h"
#include "sim/chaos/repro.h"
#include "sim/chaos/scenario.h"
#include "sim/chaos/shrinker.h"

namespace libra {
namespace {

using chaos::InjectKind;
using chaos::Scenario;
using chaos::ScenarioFuzzer;
using chaos::Verdict;

TEST(ChaosRepro, RoundTripsBitIdentically) {
  ScenarioFuzzer fuzzer(123);
  for (int i = 0; i < 5; ++i) {
    const Scenario sc = fuzzer.next();
    const std::string text = chaos::serialize_scenario(sc);
    const Scenario back = chaos::parse_scenario(text);
    EXPECT_EQ(chaos::serialize_scenario(back), text)
        << "iteration " << i << " did not round-trip";
  }
}

TEST(ChaosRepro, RejectsMalformedInput) {
  EXPECT_THROW(chaos::parse_scenario("bogus"), std::invalid_argument);
  EXPECT_THROW(chaos::parse_scenario("libra-chaos-repro v1\n"),
               std::invalid_argument);  // missing 'end'
  EXPECT_THROW(
      chaos::parse_scenario("libra-chaos-repro v1\nnode 12 zebra\nend\n"),
      std::invalid_argument);  // bad number
  EXPECT_THROW(
      chaos::parse_scenario("libra-chaos-repro v1\nwhatnow 1\nend\n"),
      std::invalid_argument);  // unknown keyword
  // Structurally fine but semantically invalid (no nodes): the parser runs
  // Scenario::validate before handing the scenario back.
  EXPECT_THROW(chaos::parse_scenario("libra-chaos-repro v1\nend\n"),
               std::invalid_argument);
}

// Artifacts written before the multi-controller control plane carry no
// `controllers` / `gossip` lines and an 8-operand `profile` line; they must
// still parse, with the control-plane knobs at their transparent defaults.
TEST(ChaosRepro, AcceptsPreControlPlaneArtifacts) {
  const std::string legacy =
      "libra-chaos-repro v1\n"
      "seed 1\n"
      "workers_b 4\n"
      "num_shards 1\n"
      "spot_drain_notice 0\n"
      "node 16 8192\n"
      "profile 7 0 10 0 0 0.25 0 0\n"
      "gen 4 300 20 9 0 0 300 0 0 1 0.05 0.5\n"
      "num_tenants 1\n"
      "end\n";
  const chaos::Scenario sc = chaos::parse_scenario(legacy);
  EXPECT_EQ(sc.num_controllers, 1);
  EXPECT_EQ(sc.controllers_b, 4);
  EXPECT_EQ(sc.gossip_period, 0.0);
  EXPECT_EQ(sc.gossip_fanout, 0);
  EXPECT_EQ(sc.profile.gossip_drop_prob, 0.0);
  EXPECT_EQ(sc.profile.gossip_delay_prob, 0.0);
  // Re-serializing upgrades the artifact to the current format, which then
  // round-trips bit-identically.
  const std::string text = chaos::serialize_scenario(sc);
  EXPECT_NE(text.find("controllers 1 4"), std::string::npos);
  EXPECT_EQ(chaos::serialize_scenario(chaos::parse_scenario(text)), text);
}

TEST(ChaosFuzzer, DeterministicAcrossInstances) {
  ScenarioFuzzer a(42);
  ScenarioFuzzer b(42);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(chaos::serialize_scenario(a.next()),
              chaos::serialize_scenario(b.next()));
  ScenarioFuzzer c(43);
  EXPECT_NE(chaos::serialize_scenario(ScenarioFuzzer(42).next()),
            chaos::serialize_scenario(c.next()));
}

TEST(ChaosFuzzer, GeneratesValidVariedScenarios) {
  ScenarioFuzzer fuzzer(7);
  bool saw_spot = false, saw_storm = false, saw_quota = false,
       saw_hetero = false, saw_multi_ctrl = false, saw_stale_gossip = false;
  for (int i = 0; i < 20; ++i) {
    const Scenario sc = fuzzer.next();  // next() validates internally
    EXPECT_NO_THROW(sc.validate());
    for (const auto& o : sc.plan.outages) saw_spot = saw_spot || o.spot;
    saw_storm = saw_storm || !sc.plan.prediction_faults.empty();
    saw_quota = saw_quota || !sc.tenant_quotas.empty();
    for (const auto& cap : sc.node_capacities)
      saw_hetero = saw_hetero || cap.cpu != sc.node_capacities[0].cpu;
    saw_multi_ctrl = saw_multi_ctrl || sc.num_controllers > 1;
    saw_stale_gossip = saw_stale_gossip || sc.gossip_period > 0.0 ||
                       sc.gossip_fanout > 0 ||
                       sc.profile.gossip_drop_prob > 0.0;
  }
  EXPECT_TRUE(saw_spot) << "20 draws produced no spot outage";
  EXPECT_TRUE(saw_storm) << "20 draws produced no misprediction storm";
  EXPECT_TRUE(saw_quota) << "20 draws produced no tenant quota";
  EXPECT_TRUE(saw_hetero) << "20 draws produced no heterogeneous cluster";
  EXPECT_TRUE(saw_multi_ctrl) << "20 draws produced no multi-controller run";
  EXPECT_TRUE(saw_stale_gossip) << "20 draws produced no gossip divergence";
}

TEST(ChaosOracle, CleanOnFixedSeed) {
  ScenarioFuzzer fuzzer(20260808);
  for (int i = 0; i < 2; ++i) {
    const Scenario sc = fuzzer.next();
    const Verdict v = chaos::check_scenario(sc);
    EXPECT_TRUE(v.ok) << "seed 20260808 iteration " << i << " failed: "
                      << v.failure << " — " << v.detail;
  }
}

// The acceptance-path negative test: seed a conservation violation, verify
// the oracle catches it, the shrinker preserves the failure class while
// removing structure, and the serialized artifact replays to the same class.
TEST(ChaosOracle, CatchesShrinksAndReplaysInjectedViolation) {
  ScenarioFuzzer fuzzer(5);
  Scenario sc = fuzzer.next();
  chaos::arm_injection(sc, InjectKind::kConservation, /*at_event=*/150);

  const Verdict v = chaos::check_scenario(sc);
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.failure, chaos::kFailAudit);
  EXPECT_NE(v.detail.find("conservation"), std::string::npos) << v.detail;

  const auto shrunk = chaos::shrink_scenario(sc, v, /*max_rounds=*/2);
  EXPECT_EQ(shrunk.verdict.failure, v.failure);
  EXPECT_GT(shrunk.accepted, 0) << "nothing could be removed from a random "
                                   "scenario without losing the failure";

  const std::string text = chaos::serialize_scenario(shrunk.scenario);
  const Scenario reloaded = chaos::parse_scenario(text);
  EXPECT_EQ(chaos::serialize_scenario(reloaded), text);
  const Verdict replayed = chaos::check_scenario(reloaded);
  ASSERT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.failure, v.failure);
}

TEST(ChaosOracle, CatchesTenantQuotaInjection) {
  ScenarioFuzzer fuzzer(9);
  Scenario sc = fuzzer.next();
  chaos::arm_injection(sc, InjectKind::kTenantQuota, /*at_event=*/100);
  ASSERT_FALSE(sc.tenant_quotas.empty());  // arm_injection's precondition

  const Verdict v = chaos::check_scenario(sc);
  ASSERT_FALSE(v.ok);
  EXPECT_EQ(v.failure, chaos::kFailAudit);
  EXPECT_NE(v.detail.find("tenant quota"), std::string::npos) << v.detail;
}

}  // namespace
}  // namespace libra
