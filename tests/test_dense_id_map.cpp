// DenseIdMap unit tests (DESIGN.md §5l): the flat slot-slab store behind the
// engine's invocation records. Covers the unordered_map contracts it mirrors
// (duplicate refusal, at() throwing, find() on dead ids), slot recycling with
// value-buffer reuse, generation-stamped handles, and the sliding window that
// keeps streaming runs O(live) instead of O(total ids).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/dense_id_map.h"

namespace libra::util {
namespace {

using Map = DenseIdMap<int64_t, std::string>;

TEST(DenseIdMap, InsertFindEraseRoundTrip) {
  Map m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.insert(7, "seven"));
  EXPECT_TRUE(m.insert(9, "nine"));
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), "seven");
  EXPECT_EQ(m.at(9), "nine");
  EXPECT_TRUE(m.contains(7));
  EXPECT_FALSE(m.contains(8));
  EXPECT_EQ(m.find(8), nullptr);

  EXPECT_TRUE(m.erase(7));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(m.find(7), nullptr) << "recycled ids must read as absent";
  EXPECT_FALSE(m.erase(7)) << "double-erase must be a no-op";
}

TEST(DenseIdMap, DuplicateInsertRefusedAndAtThrows) {
  Map m;
  EXPECT_TRUE(m.insert(3, "a"));
  EXPECT_FALSE(m.insert(3, "b"));
  EXPECT_EQ(m.at(3), "a") << "failed insert must leave the map unchanged";
  EXPECT_THROW(m.at(4), std::out_of_range);
  const Map& cm = m;
  EXPECT_THROW(cm.at(4), std::out_of_range);
}

TEST(DenseIdMap, ErasedSlotIsRecycledLifoWithValueReuse) {
  Map m;
  EXPECT_TRUE(m.insert(0, "zero"));
  EXPECT_TRUE(m.insert(1, "one"));
  EXPECT_TRUE(m.insert(2, "two"));
  EXPECT_EQ(m.slot_count(), 3u);

  // Free the middle slot; the next insert must reuse it, not grow the slab.
  EXPECT_TRUE(m.erase(1));
  EXPECT_TRUE(m.insert(5, "five"));
  EXPECT_EQ(m.slot_count(), 3u);
  EXPECT_EQ(m.at(5), "five");
  EXPECT_EQ(m.at(0), "zero");
  EXPECT_EQ(m.at(2), "two");
}

TEST(DenseIdMap, HandleResolvesUntilSlotIsRecycled) {
  Map m;
  EXPECT_TRUE(m.insert(10, "ten"));
  const Map::Handle h = m.handle_of(10);
  ASSERT_NE(m.resolve(h), nullptr);
  EXPECT_EQ(*m.resolve(h), "ten");

  // Recycle the slot under the handle: generation mismatch, stale handle
  // resolves to null instead of the new occupant.
  EXPECT_TRUE(m.erase(10));
  EXPECT_EQ(m.resolve(h), nullptr);
  EXPECT_TRUE(m.insert(11, "eleven"));
  EXPECT_EQ(m.resolve(h), nullptr)
      << "a handle from the old tenancy must not see the new one";
  const Map::Handle h2 = m.handle_of(11);
  ASSERT_NE(m.resolve(h2), nullptr);
  EXPECT_EQ(*m.resolve(h2), "eleven");

  // Absent keys get a null handle that never resolves.
  EXPECT_EQ(m.resolve(m.handle_of(999)), nullptr);
}

TEST(DenseIdMap, ForEachVisitsExactlyTheLiveEntries) {
  Map m;
  for (int64_t id = 0; id < 8; ++id)
    EXPECT_TRUE(m.insert(id, std::to_string(id)));
  for (int64_t id = 0; id < 8; id += 2) EXPECT_TRUE(m.erase(id));

  std::vector<int64_t> seen;
  m.for_each([&seen](int64_t id, const std::string& v) {
    EXPECT_EQ(v, std::to_string(id));
    seen.push_back(id);
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 3, 5, 7}));
}

TEST(DenseIdMap, WindowSlidesPastDeadPrefixAndRefusesRebasedIds) {
  Map m;
  // Stream 3000 ids through, erasing in arrival order — the dense dead
  // prefix crosses the 1024 threshold and the index re-bases.
  for (int64_t id = 0; id < 3000; ++id) {
    EXPECT_TRUE(m.insert(id, "v"));
    EXPECT_TRUE(m.erase(id));
  }
  EXPECT_GT(m.window_base(), 0) << "dead prefix should have been dropped";
  EXPECT_TRUE(m.empty());
  // Slab stayed O(live), not O(total ids ever seen).
  EXPECT_LE(m.slot_count(), 2u);

  // Ids below the recycled window base can never come back.
  EXPECT_THROW(m.insert(0, "ghost"), std::invalid_argument);
  EXPECT_FALSE(m.contains(0));
  EXPECT_FALSE(m.erase(0));
  EXPECT_EQ(m.find(0), nullptr);

  // The map still works above the base.
  const int64_t next = 3000;
  EXPECT_TRUE(m.insert(next, "fresh"));
  EXPECT_EQ(m.at(next), "fresh");
}

TEST(DenseIdMap, InterleavedChurnKeepsSlabBoundedByPeakLive) {
  Map m;
  // 64 in flight at all times over 10k ids: slab must track the in-flight
  // bound, which is what the engine's streaming runs rely on.
  constexpr int64_t kInFlight = 64;
  for (int64_t id = 0; id < 10000; ++id) {
    EXPECT_TRUE(m.insert(id, "r"));
    if (id >= kInFlight) EXPECT_TRUE(m.erase(id - kInFlight));
  }
  EXPECT_EQ(m.size(), static_cast<size_t>(kInFlight));
  EXPECT_LE(m.slot_count(), static_cast<size_t>(kInFlight) + 1);
}

}  // namespace
}  // namespace libra::util
