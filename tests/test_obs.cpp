// Observability subsystem (src/obs): histogram bucket math, trace recording,
// span ordering on a real engine run, exporter round-trips, and the two
// contracts the subsystem lives by — a disabled session emits nothing, and a
// session (enabled or not) never perturbs the simulation.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/harvest_pool.h"
#include "core/policy_event.h"
#include "exp/cli.h"
#include "exp/platforms.h"
#include "exp/runner.h"
#include "obs/exporters.h"
#include "obs/metrics_registry.h"
#include "obs/obs_session.h"
#include "obs/trace_recorder.h"
#include "workload/function_catalog.h"
#include "workload/trace.h"

namespace libra {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundariesAreExact) {
  obs::LogHistogram h({/*min_positive=*/1.0, /*growth=*/2.0,
                       /*max_buckets=*/8});
  EXPECT_EQ(h.bucket_index(0.5), -1);   // underflow
  EXPECT_EQ(h.bucket_index(0.0), -1);
  EXPECT_EQ(h.bucket_index(-3.0), -1);
  EXPECT_EQ(h.bucket_index(1.0), 0);
  EXPECT_EQ(h.bucket_index(1.999), 0);
  EXPECT_EQ(h.bucket_index(2.0), 1);    // boundary goes up
  EXPECT_EQ(h.bucket_index(4.0), 2);
  EXPECT_EQ(h.bucket_index(1e9), 7);    // clamps into last bucket
  EXPECT_DOUBLE_EQ(h.bucket_floor(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_ceil(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_floor(3), 8.0);
}

TEST(ObsHistogram, RecordAndPercentiles) {
  obs::LogHistogram h({/*min_positive=*/1.0, /*growth=*/2.0,
                       /*max_buckets=*/8});
  h.record(3.0);  // bucket 1: [2, 4)
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.sum(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  // Geometric midpoint of [2, 4): sqrt(8).
  EXPECT_NEAR(h.percentile(50), 2.8284, 1e-3);
  // The top percentile reports the true max, not a bucket estimate.
  EXPECT_DOUBLE_EQ(h.percentile(100), 3.0);

  h.record(0.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.count(), 2);
  // Rank 1 of 2 lands in the underflow bucket, reported as 0.
  EXPECT_DOUBLE_EQ(h.percentile(10), 0.0);
}

TEST(ObsHistogram, RejectsBadOptions) {
  EXPECT_THROW(obs::LogHistogram({0.0, 2.0, 8}), std::invalid_argument);
  EXPECT_THROW(obs::LogHistogram({1.0, 1.0, 8}), std::invalid_argument);
  EXPECT_THROW(obs::LogHistogram({1.0, 2.0, 0}), std::invalid_argument);
}

TEST(ObsMetrics, RegistryReturnsStableNamedRefs) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  obs::Counter& a = reg.counter("x");
  a.inc(3);
  EXPECT_EQ(reg.counter("x").value(), 3);
  EXPECT_EQ(&reg.counter("x"), &a);
  reg.histogram("h", {1.0, 2.0, 4}).record(1.5);
  EXPECT_EQ(reg.histogram("h").count(), 1);  // options ignored on re-lookup
  EXPECT_FALSE(reg.empty());
}

TEST(ObsTrace, RecorderHonorsCapAndCountsDrops) {
  obs::TraceRecorder rec(/*max_events=*/2);
  rec.instant(1.0, 0, 1, "a", "t");
  rec.instant(2.0, 0, 1, "b", "t");
  rec.instant(3.0, 0, 1, "c", "t");
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped(), 1u);
  EXPECT_EQ(rec.events()[0].name, "a");
}

// ---------------------------------------------------------------------------
// Session behavior on a real engine run
// ---------------------------------------------------------------------------

std::shared_ptr<const sim::FunctionCatalog> catalog() {
  static auto cat = std::make_shared<const sim::FunctionCatalog>(
      workload::sebs_catalog());
  return cat;
}

sim::RunMetrics run_with(obs::ObsSession* obs) {
  auto trace = workload::multi_trace(*catalog(), /*rpm=*/40, /*seed=*/5);
  auto policy = exp::make_platform(exp::PlatformKind::kLibra, catalog());
  return exp::run_experiment(exp::multi_node_config(), policy,
                             std::move(trace), obs);
}

TEST(ObsSession, SpansNestCorrectlyOnRealRun) {
  obs::ObsSession obs;
  const auto m = run_with(&obs);
  ASSERT_FALSE(obs.trace().empty());

  // Per invocation track: timestamps non-decreasing, B/E strictly balanced,
  // all spans closed at the end.
  std::map<long long, double> last_ts;
  std::map<long long, int> depth;
  size_t begins = 0, ends = 0;
  for (const auto& ev : obs.trace().events()) {
    if (ev.ph == obs::Phase::kMetadata) continue;
    auto it = last_ts.find(ev.tid);
    if (it != last_ts.end() && ev.pid == 0)
      EXPECT_GE(ev.ts, it->second) << "tid " << ev.tid;
    if (ev.pid == 0) last_ts[ev.tid] = ev.ts;
    if (ev.ph == obs::Phase::kBegin) {
      ++begins;
      ++depth[ev.tid];
      EXPECT_LE(depth[ev.tid], 1) << "overlapping spans on tid " << ev.tid;
    } else if (ev.ph == obs::Phase::kEnd) {
      ++ends;
      --depth[ev.tid];
      EXPECT_GE(depth[ev.tid], 0) << "unbalanced E on tid " << ev.tid;
    }
  }
  EXPECT_EQ(begins, ends);
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;

  // Lifecycle coverage: every completed invocation went through
  // queued -> startup -> running on its own track.
  long completed = 0;
  for (const auto& r : m.invocations) completed += r.completed ? 1 : 0;
  std::map<std::string, long> span_names;
  for (const auto& ev : obs.trace().events())
    if (ev.ph == obs::Phase::kBegin) ++span_names[ev.name];
  EXPECT_GE(span_names["queued"], completed);
  EXPECT_GE(span_names["startup"], completed);
  EXPECT_GE(span_names["running"], completed);

  // Counters line up with the run.
  const auto& counters = obs.metrics().counters();
  EXPECT_EQ(counters.at("engine.arrivals").value(),
            static_cast<long>(m.invocations.size()));
  EXPECT_EQ(counters.at("engine.completions").value(), completed);
  EXPECT_EQ(counters.at("pool.puts").value(), m.policy.harvest_puts);
  EXPECT_EQ(counters.at("policy.safeguard_triggers").value(),
            m.policy.safeguard_triggers);
  EXPECT_EQ(obs.metrics().histograms().at("invocation_response_latency_s")
                .count(),
            completed);
}

// Control-plane gauges appear only when the run exercised the control plane:
// a multi-controller run exports the ctrl.* family, the classic transparent
// single-controller run keeps its summary untouched.
TEST(ObsSessionCtrl, ControlPlaneGaugesGatedOnMultiController) {
  obs::ObsSession transparent;
  run_with(&transparent);
  EXPECT_EQ(transparent.metrics().gauges().count("ctrl.controllers"), 0u);

  obs::ObsSession obs;
  auto trace = workload::multi_trace(*catalog(), /*rpm=*/40, /*seed=*/5);
  auto policy = exp::make_platform(exp::PlatformKind::kLibra, catalog());
  auto cfg = exp::multi_node_config();
  cfg.control.num_controllers = 3;
  const auto m = exp::run_experiment(cfg, policy, std::move(trace), &obs);
  const auto& gauges = obs.metrics().gauges();
  ASSERT_EQ(gauges.count("ctrl.controllers"), 1u);
  EXPECT_EQ(gauges.at("ctrl.controllers").value(), 3.0);
  EXPECT_EQ(gauges.at("ctrl.decisions").value(),
            static_cast<double>(m.sched_decisions));
  ASSERT_EQ(gauges.count("ctrl.c2.admitted"), 1u);
  EXPECT_EQ(gauges.at("ctrl.c0.admitted").value() +
                gauges.at("ctrl.c1.admitted").value() +
                gauges.at("ctrl.c2.admitted").value(),
            static_cast<double>(m.invocations.size()));
}

TEST(ObsSession, DisabledSessionEmitsNothing) {
  obs::ObsConfig cfg;
  cfg.enabled = false;
  obs::ObsSession obs(cfg);
  const auto m = run_with(&obs);
  EXPECT_GT(m.invocations.size(), 0u);
  EXPECT_TRUE(obs.trace().empty());
  EXPECT_EQ(obs.trace().dropped(), 0u);
  EXPECT_TRUE(obs.metrics().empty());
}

TEST(ObsSession, DisabledSessionStillForwardsPoolEvents) {
  struct CountingListener : core::PoolEventListener {
    int calls = 0;
    void on_pool_event(const core::PoolEvent&) override { ++calls; }
  } inner;
  obs::ObsConfig cfg;
  cfg.enabled = false;
  obs::ObsSession obs(cfg);
  obs.chain_pool_listener(&inner);
  core::HarvestResourcePool pool;
  pool.set_event_listener(&obs);
  pool.put(1, {1.0, 64.0}, 10.0, 0.0);
  pool.preempt_source(1, 1.0);
  EXPECT_EQ(inner.calls, 2);
  EXPECT_TRUE(obs.trace().empty());
}

TEST(ObsSession, PolicyEventsBecomeCountersAndInstants) {
  obs::ObsSession obs;
  core::PolicyEvent ev;
  ev.kind = core::PolicyEventKind::kSafeguardTrigger;
  ev.now = 1.0;
  obs.on_policy_event(ev);
  ev.kind = core::PolicyEventKind::kTrustDemotion;
  ev.now = 2.0;
  obs.on_policy_event(ev);
  ev.kind = core::PolicyEventKind::kTrustPromotion;
  ev.now = 3.0;
  obs.on_policy_event(ev);
  const auto& counters = obs.metrics().counters();
  EXPECT_EQ(counters.at("policy.safeguard_triggers").value(), 1);
  EXPECT_EQ(counters.at("policy.trust_demotions").value(), 1);
  EXPECT_EQ(counters.at("policy.trust_promotions").value(), 1);
  ASSERT_EQ(obs.trace().size(), 3u);
  EXPECT_EQ(obs.trace().events()[0].name, "safeguard_trigger");
  EXPECT_EQ(obs.trace().events()[2].name, "trust_promotion");
}

// ---------------------------------------------------------------------------
// Determinism: the session never perturbs the run
// ---------------------------------------------------------------------------

TEST(ObsDeterminism, RunMetricsBitIdenticalWithObsOnOffOrAbsent) {
  const auto plain = run_with(nullptr);
  obs::ObsSession enabled;
  const auto with_enabled = run_with(&enabled);
  obs::ObsConfig off;
  off.enabled = false;
  obs::ObsSession disabled(off);
  const auto with_disabled = run_with(&disabled);

  ASSERT_EQ(plain.invocations.size(), with_enabled.invocations.size());
  ASSERT_EQ(plain.invocations.size(), with_disabled.invocations.size());
  for (size_t i = 0; i < plain.invocations.size(); ++i) {
    const auto& a = plain.invocations[i];
    const auto& b = with_enabled.invocations[i];
    const auto& c = with_disabled.invocations[i];
    EXPECT_EQ(a.id, b.id);
    // Bit-exact, not approximate: the session must not change a single
    // floating-point operation of the simulation.
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.response_latency, b.response_latency);
    EXPECT_EQ(a.speedup, b.speedup);
    EXPECT_EQ(a.oom_count, b.oom_count);
    EXPECT_EQ(a.finish, c.finish);
    EXPECT_EQ(a.response_latency, c.response_latency);
    EXPECT_EQ(a.speedup, c.speedup);
  }
  EXPECT_EQ(plain.p99_latency(), with_enabled.p99_latency());
  EXPECT_EQ(plain.workload_completion_time(),
            with_enabled.workload_completion_time());
  EXPECT_EQ(plain.policy.safeguard_triggers,
            with_enabled.policy.safeguard_triggers);
  EXPECT_EQ(plain.policy.harvest_puts, with_enabled.policy.harvest_puts);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Minimal JSON syntax validator (objects, arrays, strings, numbers,
/// bools/null) — enough to prove the exporter writes well-formed JSON
/// without a third-party parser.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ObsExport, ChromeTraceJsonRoundTrips) {
  obs::ObsSession obs;
  run_with(&obs);
  const std::string path = ::testing::TempDir() + "obs_trace.json";
  std::string error;
  ASSERT_TRUE(obs.export_chrome_trace(path, &error)) << error;

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(JsonValidator(text).valid());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);

  // Parse back line-by-line (the writer emits one event per line) and
  // validate the trace-event schema: known ph, ts/pid/tid on every event,
  // non-negative microsecond timestamps.
  std::istringstream lines(text);
  std::string line;
  std::getline(lines, line);  // header
  size_t events = 0, begins = 0, ends = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"name\"", 0) != 0) continue;
    ++events;
    const auto ph_at = line.find("\"ph\":\"");
    ASSERT_NE(ph_at, std::string::npos) << line;
    const char ph = line[ph_at + 6];
    EXPECT_TRUE(ph == 'B' || ph == 'E' || ph == 'i' || ph == 'C' ||
                ph == 'M')
        << line;
    begins += ph == 'B' ? 1 : 0;
    ends += ph == 'E' ? 1 : 0;
    const auto ts_at = line.find("\"ts\":");
    ASSERT_NE(ts_at, std::string::npos) << line;
    EXPECT_GE(std::stod(line.substr(ts_at + 5)), 0.0) << line;
    EXPECT_NE(line.find("\"pid\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"tid\":"), std::string::npos) << line;
  }
  EXPECT_EQ(events, obs.trace().size());
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  std::remove(path.c_str());
}

TEST(ObsExport, CsvTimeSeriesParsesBack) {
  obs::ObsSession obs;
  run_with(&obs);
  const std::string path = ::testing::TempDir() + "obs_series.csv";
  std::string error;
  ASSERT_TRUE(obs.export_csv(path, &error)) << error;

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "series,t,value");
  std::map<std::string, std::pair<size_t, double>> per_series;  // count, last t
  while (std::getline(in, line)) {
    const auto c1 = line.find(',');
    const auto c2 = line.find(',', c1 + 1);
    ASSERT_NE(c1, std::string::npos) << line;
    ASSERT_NE(c2, std::string::npos) << line;
    const std::string name = line.substr(0, c1);
    const double t = std::stod(line.substr(c1 + 1, c2 - c1 - 1));
    const double v = std::stod(line.substr(c2 + 1));
    (void)v;
    auto& [count, last_t] = per_series[name];
    if (count > 0) EXPECT_GE(t, last_t) << name;  // time-ordered per series
    last_t = t;
    ++count;
  }
  ASSERT_FALSE(per_series.empty());
  // Every registry series made it out with every sample.
  for (const auto& [name, series] : obs.metrics().all_series())
    EXPECT_EQ(per_series[name].first, series.samples().size()) << name;
  std::remove(path.c_str());
}

TEST(ObsExport, NdjsonSinkStreamsInsteadOfBuffering) {
  obs::TraceRecorder rec(/*max_events=*/2);
  std::ostringstream sink;
  rec.set_sink(&sink);
  rec.instant(1.0, 0, 1, "a", "t");
  rec.begin(2.0, 0, 1, "b", "t", "{\"k\":1}");
  rec.end(3.0, 0, 1, "b", "t");
  rec.instant(4.0, 0, 1, "c", "t");  // over the in-memory cap: still streams
  EXPECT_EQ(rec.streamed(), 4u);
  EXPECT_EQ(rec.size(), 0u);     // nothing buffered
  EXPECT_EQ(rec.dropped(), 0u);  // cap does not apply to the stream

  std::istringstream lines(sink.str());
  std::string line;
  size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_TRUE(JsonValidator(line).valid()) << line;
    EXPECT_EQ(line.rfind("{\"name\"", 0), 0u) << line;
  }
  EXPECT_EQ(n, 4u);
  EXPECT_NE(sink.str().find("\"args\":{\"k\":1}"), std::string::npos);
}

TEST(ObsExport, NdjsonStreamRoundTripsAgainstBufferedTrace) {
  // Two identical runs: one buffered, one streamed to NDJSON with a tiny
  // in-memory cap. Each streamed line must byte-match trace_event_json of
  // the corresponding buffered event — stream and buffer are two sinks of
  // the same event sequence.
  obs::ObsSession buffered;
  run_with(&buffered);
  ASSERT_FALSE(buffered.trace().empty());

  const std::string path = ::testing::TempDir() + "obs_trace.ndjson";
  obs::ObsConfig cfg;
  cfg.max_trace_events = 8;  // would truncate a buffered run this size
  cfg.ndjson_path = path;
  obs::ObsSession streaming(cfg);
  run_with(&streaming);
  EXPECT_EQ(streaming.trace().size(), 0u);
  EXPECT_EQ(streaming.trace().dropped(), 0u);
  EXPECT_EQ(streaming.trace().streamed(), buffered.trace().size());
  EXPECT_GT(streaming.trace().streamed(), cfg.max_trace_events);

  std::istringstream lines(slurp(path));
  std::string line;
  size_t i = 0;
  for (; std::getline(lines, line); ++i) {
    ASSERT_LT(i, buffered.trace().size());
    EXPECT_EQ(line, obs::trace_event_json(buffered.trace().events()[i]))
        << "line " << i;
  }
  EXPECT_EQ(i, buffered.trace().size());
  std::remove(path.c_str());
}

TEST(ObsExport, SummaryMentionsKeyMetrics) {
  obs::ObsSession obs;
  run_with(&obs);
  std::ostringstream ss;
  obs.write_summary(ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("engine.arrivals"), std::string::npos);
  EXPECT_NE(text.find("invocation_response_latency_s"), std::string::npos);
  EXPECT_NE(text.find("trace events:"), std::string::npos);
  // Per-shard decision-cost histograms and the derived balance line (§6.4).
  EXPECT_NE(text.find("sched_decision_cost.shard"), std::string::npos);
  EXPECT_NE(text.find("shard balance:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shared bench CLI
// ---------------------------------------------------------------------------

TEST(ObsCli, ParsesSharedFlagsAndPassesUnknownsThrough) {
  const char* argv[] = {"bench",          "--smoke",
                        "--trace-out",    "/tmp/prefix",
                        "--obs-every-n=4", "--benchmark_filter=Pool"};
  auto opt = exp::parse_cli(6, const_cast<char**>(argv));
  EXPECT_TRUE(opt.smoke);
  EXPECT_TRUE(opt.obs_requested());
  EXPECT_EQ(opt.trace_out, "/tmp/prefix");
  EXPECT_EQ(opt.obs_every_n, 4);
  ASSERT_EQ(opt.extra.size(), 1u);
  EXPECT_EQ(opt.extra[0], "--benchmark_filter=Pool");

  const char* argv2[] = {"bench"};
  auto opt2 = exp::parse_cli(1, const_cast<char**>(argv2));
  EXPECT_FALSE(opt2.smoke);
  EXPECT_FALSE(opt2.obs_requested());
  const obs::ObsConfig cfg = exp::obs_config_from(opt2);
  EXPECT_FALSE(cfg.enabled);

  // --trace-ndjson implies observability and lands in ObsConfig.
  const char* argv3[] = {"bench", "--trace-ndjson=/tmp/t.ndjson"};
  auto opt3 = exp::parse_cli(2, const_cast<char**>(argv3));
  EXPECT_TRUE(opt3.obs_requested());
  EXPECT_EQ(opt3.trace_ndjson, "/tmp/t.ndjson");
  const obs::ObsConfig cfg3 = exp::obs_config_from(opt3);
  EXPECT_TRUE(cfg3.enabled);
  EXPECT_EQ(cfg3.ndjson_path, "/tmp/t.ndjson");
}

}  // namespace
}  // namespace libra
