// Statistical and determinism tests for the src/gen synthetic workload
// generator: seeded reproducibility (same seed -> byte-identical stream),
// Zipf popularity tail and diurnal rate shape within distribution-level
// tolerances (KS / chi-square style checks on the lazily drawn stream),
// heavy-tailed marginals from the synthetic catalog, config validation, and
// the MaterializedSource adapter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "exp/cli.h"
#include "gen/gen_config.h"
#include "gen/synthetic_source.h"
#include "workload/materialized_source.h"
#include "workload/trace.h"

namespace libra {
namespace {

gen::GenConfig small_cfg() {
  gen::GenConfig cfg;
  cfg.functions = 500;
  cfg.rpm = 6000.0;  // 100 req/s
  cfg.duration = 120.0;
  cfg.seed = 7;
  return cfg;
}

std::vector<sim::Invocation> drain(gen::SyntheticSource& src) {
  std::vector<sim::Invocation> out;
  while (src.peek_arrival().has_value()) out.push_back(src.next());
  return out;
}

// ---------------- determinism ----------------

TEST(Gen, SameSeedYieldsIdenticalStream) {
  gen::SyntheticSource a(small_cfg());
  gen::SyntheticSource b(small_cfg());
  const auto sa = drain(a);
  const auto sb = drain(b);
  ASSERT_EQ(sa.size(), sb.size());
  ASSERT_GT(sa.size(), 1000u);
  for (size_t i = 0; i < sa.size(); ++i) {
    ASSERT_EQ(sa[i].id, sb[i].id) << i;
    ASSERT_EQ(sa[i].func, sb[i].func) << i;
    ASSERT_EQ(sa[i].arrival, sb[i].arrival) << i;  // bit-identical
    ASSERT_EQ(sa[i].input.size, sb[i].input.size) << i;
    ASSERT_EQ(sa[i].input.content_seed, sb[i].input.content_seed) << i;
    ASSERT_EQ(sa[i].truth.demand.cpu, sb[i].truth.demand.cpu) << i;
    ASSERT_EQ(sa[i].truth.demand.mem, sb[i].truth.demand.mem) << i;
    ASSERT_EQ(sa[i].truth.work, sb[i].truth.work) << i;
  }
}

TEST(Gen, DifferentSeedsDiverge) {
  auto cfg = small_cfg();
  gen::SyntheticSource a(cfg);
  cfg.seed = 8;
  gen::SyntheticSource b(cfg);
  const auto sa = drain(a);
  const auto sb = drain(b);
  bool differ = sa.size() != sb.size();
  for (size_t i = 0; !differ && i < sa.size(); ++i)
    differ = sa[i].arrival != sb[i].arrival || sa[i].func != sb[i].func;
  EXPECT_TRUE(differ);
}

TEST(Gen, StreamIsSortedSequentialAndWithinWindow) {
  auto cfg = small_cfg();
  gen::SyntheticSource src(cfg);
  double last = 0.0;
  sim::InvocationId expect_id = 0;
  while (auto at = src.peek_arrival()) {
    const sim::Invocation inv = src.next();
    EXPECT_EQ(inv.arrival, *at);
    EXPECT_GE(inv.arrival, last);
    EXPECT_LT(inv.arrival, cfg.duration);
    EXPECT_EQ(inv.id, expect_id++);
    last = inv.arrival;
  }
  EXPECT_EQ(src.emitted(), expect_id);
  EXPECT_THROW(src.next(), std::logic_error);
}

TEST(Gen, EmittedCountTracksExpectedInvocations) {
  auto cfg = small_cfg();
  gen::SyntheticSource src(cfg);
  const auto stream = drain(src);
  const double expected = static_cast<double>(cfg.expected_invocations());
  EXPECT_GT(static_cast<double>(stream.size()), 0.85 * expected);
  EXPECT_LT(static_cast<double>(stream.size()), 1.15 * expected);
}

// ---------------- popularity (Zipf) ----------------

// KS-style check: the empirical function-popularity CDF (functions are
// ordered by rank — weight (f+1)^-s) must track the theoretical Zipf CDF.
TEST(Gen, ZipfPopularityTailWithinTolerance) {
  auto cfg = small_cfg();
  cfg.functions = 1000;
  cfg.zipf_s = 1.0;
  cfg.burst_episodes_per_min = 0.0;  // isolate the base popularity draws
  cfg.diurnal_amplitude = 0.0;
  gen::SyntheticSource src(cfg);
  const auto stream = drain(src);
  ASSERT_GT(stream.size(), 8000u);

  std::vector<double> counts(static_cast<size_t>(cfg.functions), 0.0);
  for (const auto& inv : stream) ++counts[static_cast<size_t>(inv.func)];

  std::vector<double> weights(counts.size());
  double total_w = 0.0;
  for (size_t f = 0; f < weights.size(); ++f) {
    weights[f] = std::pow(static_cast<double>(f + 1), -cfg.zipf_s);
    total_w += weights[f];
  }
  const double n = static_cast<double>(stream.size());
  double emp = 0.0, theory = 0.0, ks = 0.0;
  for (size_t f = 0; f < counts.size(); ++f) {
    emp += counts[f] / n;
    theory += weights[f] / total_w;
    ks = std::max(ks, std::abs(emp - theory));
  }
  // KS critical value at alpha=0.001 for n=8000 is ~0.022; leave headroom.
  EXPECT_LT(ks, 0.03);

  // Tail sanity: rank-1 share near 1/H(1000) ~= 13.4%, and the top decile
  // must dominate the bottom half by an order of magnitude.
  const double top_share = counts[0] / n;
  EXPECT_GT(top_share, 0.08);
  EXPECT_LT(top_share, 0.20);
  double top100 = 0.0, bottom500 = 0.0;
  for (size_t f = 0; f < 100; ++f) top100 += counts[f];
  for (size_t f = 500; f < 1000; ++f) bottom500 += counts[f];
  EXPECT_GT(top100, 5.0 * bottom500);
}

// ---------------- diurnal shape ----------------

TEST(Gen, DiurnalRateShapeWithinTolerance) {
  gen::GenConfig cfg;
  cfg.functions = 200;
  cfg.rpm = 12000.0;  // 200 req/s
  cfg.duration = 200.0;
  cfg.diurnal_period = 200.0;  // one full cycle inside the window
  cfg.diurnal_amplitude = 0.6;
  cfg.burst_episodes_per_min = 0.0;
  cfg.seed = 11;
  gen::SyntheticSource src(cfg);

  // rate_at exposes the analytic envelope exactly.
  const double base = cfg.rpm / 60.0;
  EXPECT_NEAR(src.rate_at(50.0), base * 1.6, 1e-9);    // sin peak
  EXPECT_NEAR(src.rate_at(150.0), base * 0.4, 1e-9);   // sin trough

  const auto stream = drain(src);
  ASSERT_GT(stream.size(), 20000u);

  // Chi-square over 10 equal time bins against the integrated rate.
  const int bins = 10;
  std::vector<double> observed(bins, 0.0);
  for (const auto& inv : stream)
    ++observed[std::min<int>(bins - 1,
                             static_cast<int>(inv.arrival / cfg.duration *
                                              bins))];
  const double n = static_cast<double>(stream.size());
  double chi2 = 0.0;
  for (int b = 0; b < bins; ++b) {
    const double t0 = cfg.duration * b / bins;
    const double t1 = cfg.duration * (b + 1) / bins;
    const double w = 2.0 * M_PI / cfg.diurnal_period;
    // integral of (1 + a sin(w t)) over [t0, t1], normalized by duration.
    const double mass =
        (t1 - t0) + cfg.diurnal_amplitude / w *
                        (std::cos(w * t0) - std::cos(w * t1));
    const double expected = n * mass / cfg.duration;
    chi2 += (observed[b] - expected) * (observed[b] - expected) / expected;
  }
  // 9 degrees of freedom: chi2 > 40 has p < 1e-5 — a real shape mismatch.
  EXPECT_LT(chi2, 40.0) << "diurnal bin counts diverge from the sinusoid";

  // The rising half-cycle must carry visibly more arrivals than the falling
  // one: expected ratio (1 + 2a/pi)/(1 - 2a/pi) ~= 2.24 at a = 0.6.
  double first = 0.0;
  for (const auto& inv : stream)
    if (inv.arrival < cfg.duration / 2) ++first;
  const double ratio = first / (n - first);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.8);
}

// ---------------- bursts ----------------

TEST(Gen, BurstEpisodesAddCorrelatedArrivals) {
  auto cfg = small_cfg();
  cfg.burst_episodes_per_min = 0.0;
  gen::SyntheticSource quiet(cfg);
  const size_t base_count = drain(quiet).size();

  cfg.burst_episodes_per_min = 60.0;  // one episode per second
  cfg.burst_size_mean = 10.0;
  gen::SyntheticSource bursty(cfg);
  const auto stream = drain(bursty);
  // ~120 s * 1 ep/s * ~10 arrivals = ~1200 extra on top of ~12000 base.
  EXPECT_GT(stream.size(), base_count + 500);

  // Correlation: a burst reuses one function, so the count of consecutive
  // same-function pairs must far exceed the uncorrelated expectation
  // (sum p_f^2 ~ a few percent under Zipf over 500 functions).
  size_t same = 0;
  for (size_t i = 1; i < stream.size(); ++i)
    if (stream[i].func == stream[i - 1].func) ++same;
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(stream.size()),
            0.05);
}

// ---------------- marginals ----------------

TEST(Gen, CatalogMarginalsAreHeavyTailedAndFitShardSlices) {
  auto cfg = small_cfg();
  cfg.functions = 2000;
  const sim::FunctionCatalog catalog = gen::synthetic_catalog(cfg);
  ASSERT_EQ(catalog.size(), 2000u);

  std::vector<double> mem, work;
  for (const auto& fn : catalog.all()) {
    const sim::Resources alloc = fn->user_allocation();
    // Every function must fit a 4-shard slice of a 24c/24GB jetstream node.
    EXPECT_GE(alloc.cpu, 1.0);
    EXPECT_LE(alloc.cpu, 4.0);
    EXPECT_GE(alloc.mem, 128.0);
    EXPECT_LE(alloc.mem, 2048.0);
    mem.push_back(alloc.mem);
    util::Rng rng(fn->id() * 977 + 5);
    work.push_back(fn->evaluate(fn->sample_input(rng)).work);
  }
  std::sort(mem.begin(), mem.end());
  std::sort(work.begin(), work.end());
  const auto q = [](const std::vector<double>& xs, double p) {
    return xs[static_cast<size_t>(p * static_cast<double>(xs.size() - 1))];
  };
  // Lognormal-style spread: p99/p50 well above a light-tailed distribution.
  EXPECT_GT(q(mem, 0.99) / q(mem, 0.5), 2.5);
  EXPECT_GT(q(work, 0.99) / q(work, 0.5), 4.0);
}

TEST(Gen, CatalogIsSeedDeterministic) {
  const auto cfg = small_cfg();
  const sim::FunctionCatalog a = gen::synthetic_catalog(cfg);
  const sim::FunctionCatalog b = gen::synthetic_catalog(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t f = 0; f < a.size(); ++f) {
    EXPECT_EQ(a.at(f).user_allocation().cpu, b.at(f).user_allocation().cpu);
    EXPECT_EQ(a.at(f).user_allocation().mem, b.at(f).user_allocation().mem);
    EXPECT_EQ(a.at(f).size_related(), b.at(f).size_related());
  }
}

// ---------------- config validation ----------------

TEST(GenConfig, ValidateRejectsBadKnobs) {
  const auto bad = [](auto mutate) {
    gen::GenConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  };
  bad([](gen::GenConfig& c) { c.functions = 0; });
  bad([](gen::GenConfig& c) { c.rpm = 0.0; });
  bad([](gen::GenConfig& c) { c.duration = -1.0; });
  bad([](gen::GenConfig& c) { c.zipf_s = -0.1; });
  bad([](gen::GenConfig& c) { c.diurnal_amplitude = 1.0; });
  bad([](gen::GenConfig& c) { c.diurnal_period = 0.0; });
  bad([](gen::GenConfig& c) { c.burst_episodes_per_min = -2.0; });
  bad([](gen::GenConfig& c) { c.burst_spacing = 0.0; });
  bad([](gen::GenConfig& c) { c.mean_work = 0.0; });
  gen::GenConfig ok;
  EXPECT_NO_THROW(ok.validate());
}

TEST(GenConfig, CliFlagsRoundTripAndBadValuesReachValidate) {
  const char* good[] = {"bench", "--gen-functions", "250", "--gen-rpm",
                        "1200",  "--gen-seed",      "42",  "--gen-minutes",
                        "2.5"};
  auto opt = exp::parse_cli(9, const_cast<char**>(good));
  EXPECT_TRUE(opt.gen);
  const gen::GenConfig cfg = opt.gen_config();  // validates
  EXPECT_EQ(cfg.functions, 250);
  EXPECT_DOUBLE_EQ(cfg.rpm, 1200.0);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_DOUBLE_EQ(cfg.duration, 150.0);

  // Bad values must NOT be silently replaced by defaults — they flow into
  // GenConfig so validate() rejects them by name.
  const char* bad[] = {"bench", "--gen-rpm", "0"};
  auto bopt = exp::parse_cli(3, const_cast<char**>(bad));
  EXPECT_TRUE(bopt.gen);
  EXPECT_THROW(bopt.gen_config(), std::invalid_argument);
  const char* neg[] = {"bench", "--gen-minutes", "-1"};
  EXPECT_THROW(exp::parse_cli(3, const_cast<char**>(neg)).gen_config(),
               std::invalid_argument);
}

// ---------------- MaterializedSource adapter ----------------

TEST(MaterializedSource, ReplaysTraceAndReportsHorizon) {
  auto cfg = small_cfg();
  gen::SyntheticSource synth(cfg);
  auto trace = drain(synth);
  const double last_arrival = trace.back().arrival;
  const size_t n = trace.size();

  workload::MaterializedSource src(std::move(trace));
  EXPECT_EQ(src.size_hint(), n);
  EXPECT_EQ(src.horizon(), last_arrival);
  size_t pulled = 0;
  while (auto at = src.peek_arrival()) {
    const sim::Invocation inv = src.next();
    EXPECT_EQ(inv.arrival, *at);
    ++pulled;
  }
  EXPECT_EQ(pulled, n);
  EXPECT_THROW(src.next(), std::logic_error);
}

TEST(MaterializedSource, RejectsUnsortedTrace) {
  auto cfg = small_cfg();
  gen::SyntheticSource synth(cfg);
  auto trace = drain(synth);
  ASSERT_GT(trace.size(), 2u);
  std::swap(trace.front().arrival, trace.back().arrival);
  EXPECT_THROW(workload::MaterializedSource src(std::move(trace)),
               std::invalid_argument);
}

}  // namespace
}  // namespace libra
