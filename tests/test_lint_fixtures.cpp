// Self-tests for the libra-lint lexical backend: every check gets a fire
// fixture, a no-fire fixture, and suppression-grammar coverage, driven
// in-process through analyze_content with virtual src/ rule paths (the
// fixtures live in tests/lint/fixtures/ and are never compiled or linted by
// the repo gate). LIBRA_LINT_FIXTURE_DIR is baked in by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace libra::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(LIBRA_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Analyzes a fixture under a virtual rule path with only `check` enabled
/// (plus the always-on bad-suppression meta-check). The fixture's own
/// declarations feed the SymbolIndex, as run_lexical would.
std::vector<Finding> run_fixture(const std::string& name,
                                 const std::string& rule_path, Check check) {
  const std::string content = fixture(name);
  SymbolIndex index;
  index_file(rule_path, content, &index);
  LintOptions opt;
  opt.checks.push_back(check);
  return analyze_content(rule_path, content, opt, &index);
}

long count_of(const std::vector<Finding>& fs, Check c, bool suppressed) {
  long n = 0;
  for (const auto& f : fs)
    if (f.check == c && f.suppressed == suppressed) ++n;
  return n;
}

// ---- nondeterminism-source ----

TEST(LintNondeterminism, FiresOnEverySource) {
  const auto fs = run_fixture("nondet_fire.cpp", "src/sim/nondet_fire.cpp",
                              Check::kNondeterminismSource);
  // rand, getenv, steady_clock, random_device, hash<T*>.
  EXPECT_EQ(count_of(fs, Check::kNondeterminismSource, false), 5);
  EXPECT_EQ(count_of(fs, Check::kBadSuppression, false), 0);
}

TEST(LintNondeterminism, CleanOnSeededRngAndSimClock) {
  const auto fs = run_fixture("nondet_clean.cpp", "src/sim/nondet_clean.cpp",
                              Check::kNondeterminismSource);
  EXPECT_TRUE(fs.empty());
}

TEST(LintNondeterminism, OnlyAppliesToSimCorePaths) {
  // Same content under src/exp/ (timing code is allowlisted by path).
  const auto fs = run_fixture("nondet_fire.cpp", "src/exp/nondet_fire.cpp",
                              Check::kNondeterminismSource);
  EXPECT_TRUE(fs.empty());
}

// ---- unordered-iteration ----

TEST(LintUnordered, FiresOnRangeForAndIteratorWalk) {
  const auto fs = run_fixture("unordered_fire.cpp",
                              "src/sim/unordered_fire.cpp",
                              Check::kUnorderedIteration);
  EXPECT_EQ(count_of(fs, Check::kUnorderedIteration, false), 2);
}

TEST(LintUnordered, SortedSnapshotAllowAndOrderedMapAreClean) {
  const auto fs = run_fixture("unordered_clean.cpp",
                              "src/sim/unordered_clean.cpp",
                              Check::kUnorderedIteration);
  // The collect loop's finding exists but is suppressed by its ALLOW; the
  // std::map walk and the vector sort never fire.
  EXPECT_EQ(count_of(fs, Check::kUnorderedIteration, true), 1);
  EXPECT_EQ(count_of(fs, Check::kUnorderedIteration, false), 0);
  ASSERT_FALSE(fs.empty());
  EXPECT_FALSE(fs[0].suppression_reason.empty());
}

TEST(LintUnordered, AccessorCrossesFileBoundariesViaIndex) {
  // The accessor is declared in one file; the walk lives in another.
  SymbolIndex index;
  index_file("src/sim/host.h",
             "struct Host { std::unordered_map<int, double>& "
             "invocations_map(); };\n",
             &index);
  LintOptions opt;
  opt.checks.push_back(Check::kUnorderedIteration);
  const auto fs = analyze_content(
      "src/core/walker.cpp",
      "inline double sum(Host& host) {\n"
      "  double t = 0.0;\n"
      "  for (const auto& [id, v] : host.invocations_map()) t += v;\n"
      "  return t;\n"
      "}\n",
      opt, &index);
  EXPECT_EQ(count_of(fs, Check::kUnorderedIteration, false), 1);
}

// ---- guarded-by-coverage ----

TEST(LintGuardedBy, FiresOnUnannotatedMembersAndRawStdMutex) {
  const auto fs = run_fixture("guarded_fire.cpp", "src/sim/guarded_fire.cpp",
                              Check::kGuardedByCoverage);
  // total_ and name_ unannotated in the util::Mutex owner, plus Legacy's raw
  // std::mutex member.
  EXPECT_EQ(count_of(fs, Check::kGuardedByCoverage, false), 3);
}

TEST(LintGuardedBy, AnnotatedAndExemptMembersAreClean) {
  const auto fs = run_fixture("guarded_clean.cpp", "src/sim/guarded_clean.cpp",
                              Check::kGuardedByCoverage);
  EXPECT_TRUE(fs.empty());
}

// ---- bare-assert ----

TEST(LintBareAssert, FiresOnAssertCall) {
  const auto fs = run_fixture("assert_fire.cpp", "src/sim/assert_fire.cpp",
                              Check::kBareAssert);
  EXPECT_EQ(count_of(fs, Check::kBareAssert, false), 1);
}

TEST(LintBareAssert, AuditCheckAndLookalikeIdentifiersAreClean) {
  const auto fs = run_fixture("assert_clean.cpp", "src/sim/assert_clean.cpp",
                              Check::kBareAssert);
  EXPECT_TRUE(fs.empty());
}

TEST(LintBareAssert, OnlyAppliesUnderSrc) {
  const auto fs = run_fixture("assert_fire.cpp", "bench/assert_fire.cpp",
                              Check::kBareAssert);
  EXPECT_TRUE(fs.empty());
}

// ---- ledger-narrowing ----

TEST(LintLedger, FiresOnFloatCastsAndImplicitNarrowing) {
  const auto fs =
      run_fixture("ledger_fire.cpp", "src/core/harvest_pool_fixture.cpp",
                  Check::kLedgerNarrowing);
  // One float keyword, two C-style casts, two implicit narrowing decls (the
  // `cores` line carries a cast finding and a narrowing finding).
  EXPECT_EQ(count_of(fs, Check::kLedgerNarrowing, false), 5);
}

TEST(LintLedger, ExplicitConversionsAreClean) {
  const auto fs =
      run_fixture("ledger_clean.cpp", "src/core/harvest_pool_fixture.cpp",
                  Check::kLedgerNarrowing);
  EXPECT_TRUE(fs.empty());
}

TEST(LintLedger, OnlyAppliesToLedgerFiles) {
  const auto fs = run_fixture("ledger_fire.cpp", "src/core/scheduler_extra.cpp",
                              Check::kLedgerNarrowing);
  EXPECT_TRUE(fs.empty());
}

// ---- flat-hot-path ----

TEST(LintFlatHotPath, FiresOnMapMembersIncludingNested) {
  const auto fs = run_fixture("flathot_fire.cpp", "src/sim/engine.h",
                              Check::kFlatHotPath);
  // unordered_map member, std::map member, vector-of-maps member; the local
  // scratch map and the flat vector member stay clean.
  EXPECT_EQ(count_of(fs, Check::kFlatHotPath, false), 3);
}

TEST(LintFlatHotPath, FlatMembersAndReasonedAllowAreClean) {
  const auto fs = run_fixture("flathot_clean.cpp", "src/core/harvest_pool.h",
                              Check::kFlatHotPath);
  EXPECT_EQ(count_of(fs, Check::kFlatHotPath, false), 0);
  EXPECT_EQ(count_of(fs, Check::kFlatHotPath, true), 1);
  ASSERT_FALSE(fs.empty());
  EXPECT_FALSE(fs[0].suppression_reason.empty());
}

TEST(LintFlatHotPath, OnlyAppliesToDesignatedFiles) {
  // The same map members outside the hot-path file list are policy-free:
  // libra_policy.h keeps its bookkeeping maps without ALLOW churn.
  const auto fs = run_fixture("flathot_fire.cpp", "src/core/libra_policy.h",
                              Check::kFlatHotPath);
  EXPECT_TRUE(fs.empty());
}

// ---- suppression grammar ----

TEST(LintSuppression, ReasonedAllowCoversNextLineOnly) {
  const auto fs = run_fixture("suppress.cpp", "src/sim/suppress.cpp",
                              Check::kNondeterminismSource);
  // steady_clock under the reasoned ALLOW: reported but suppressed.
  EXPECT_EQ(count_of(fs, Check::kNondeterminismSource, true), 1);
  // The uncovered rand() calls (no ALLOW, malformed ALLOWs) stay live.
  EXPECT_EQ(count_of(fs, Check::kNondeterminismSource, false), 3);
  // Missing reason + unknown check name: one bad-suppression each, and
  // bad-suppression itself can never be suppressed.
  EXPECT_EQ(count_of(fs, Check::kBadSuppression, false), 2);
  EXPECT_EQ(count_of(fs, Check::kBadSuppression, true), 0);
}

TEST(LintSuppression, FileWideAllowCoversWholeFile) {
  const auto fs = run_fixture("suppress_filewide.cpp",
                              "src/sim/suppress_filewide.cpp",
                              Check::kBareAssert);
  EXPECT_EQ(count_of(fs, Check::kBareAssert, true), 2);
  EXPECT_EQ(count_of(fs, Check::kBareAssert, false), 0);
  EXPECT_EQ(count_of(fs, Check::kBadSuppression, false), 0);
}

// ---- JSON artifact shape ----

TEST(LintJson, ArtifactContainsCheckFileLineAndSuppression) {
  RunResult result;
  result.findings.push_back({Check::kBareAssert, "src/sim/x.cpp", 12,
                             "msg \"quoted\"", false, ""});
  result.findings.push_back({Check::kUnorderedIteration, "src/core/y.h", 3,
                             "walk", true, "sorted before use"});
  result.files_scanned = 2;
  result.unsuppressed = 1;
  const std::string json = findings_to_json(result, "lexical");
  EXPECT_NE(json.find("\"backend\": \"lexical\""), std::string::npos);
  EXPECT_NE(json.find("\"check\": \"bare-assert\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 12"), std::string::npos);
  EXPECT_NE(json.find("msg \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"sorted before use\""), std::string::npos);
}

}  // namespace
}  // namespace libra::lint
