// Fault-injection & resilience subsystem tests: plan/profile validation,
// injector determinism, churn integration (crash -> kill -> retry -> recover)
// and the harvest-safety invariant — no grant from a dead node survives it.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "baselines/default_policy.h"
#include "core/libra_policy.h"
#include "core/profiler.h"
#include "exp/platforms.h"
#include "exp/runner.h"
#include "sim/engine.h"
#include "sim/fault/fault_injector.h"
#include "workload/function_catalog.h"
#include "workload/trace.h"

namespace libra {
namespace {

using sim::Engine;
using sim::EngineConfig;
using sim::Invocation;
using sim::NodeId;
using sim::Resources;
using sim::RunMetrics;
using sim::fault::ChurnEvent;
using sim::fault::FaultInjector;
using sim::fault::FaultPlan;
using sim::fault::FaultProfile;
using sim::fault::FaultWindow;
using sim::fault::kAllNodes;
using sim::fault::kNever;
using sim::fault::NodeOutage;

std::shared_ptr<const sim::FunctionCatalog> catalog() {
  static auto cat =
      std::make_shared<const sim::FunctionCatalog>(workload::sebs_catalog());
  return cat;
}

// ---------------------------------------------------------------- validation

TEST(FaultPlan, RejectsUnknownNodeAndInvertedBounds) {
  FaultPlan plan;
  plan.outages.push_back({/*node=*/7, /*down_at=*/1.0, /*up_at=*/2.0});
  EXPECT_THROW(plan.validate(/*num_nodes=*/4), std::invalid_argument);

  plan.outages = {{0, /*down_at=*/5.0, /*up_at=*/5.0}};  // zero-length
  EXPECT_THROW(plan.validate(4), std::invalid_argument);

  plan.outages = {{0, 1.0, 2.0}};
  plan.ping_blackouts = {{kAllNodes, /*from=*/3.0, /*until=*/1.0}};
  EXPECT_THROW(plan.validate(4), std::invalid_argument);

  plan.ping_blackouts = {{kAllNodes, 1.0, 3.0}};
  EXPECT_NO_THROW(plan.validate(4));
}

TEST(FaultProfile, RejectsBadProbabilitiesAndTimes) {
  FaultProfile p;
  p.ping_drop_prob = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = FaultProfile{};
  p.node_mtbf = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = FaultProfile{};
  p.node_mtbf = 10.0;
  p.node_mttr = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = FaultProfile{};
  p.ping_delay_prob = 0.1;
  p.ping_delay_mean = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  EXPECT_NO_THROW(FaultProfile{}.validate());
}

TEST(EngineValidation, RejectsBadConfigurations) {
  auto policy = std::make_shared<baselines::DefaultPolicy>();

  EngineConfig empty;  // no nodes
  EXPECT_THROW(Engine(empty, policy), std::invalid_argument);

  EngineConfig shards;
  shards.node_capacities = {Resources{8, 8192}};
  shards.num_shards = 0;
  EXPECT_THROW(Engine(shards, policy), std::invalid_argument);

  EngineConfig badcap;
  badcap.node_capacities = {Resources{0, 8192}};
  EXPECT_THROW(Engine(badcap, policy), std::invalid_argument);

  EngineConfig badretry;
  badretry.node_capacities = {Resources{8, 8192}};
  badretry.max_fault_retries = -1;
  EXPECT_THROW(Engine(badretry, policy), std::invalid_argument);

  EngineConfig badplan;
  badplan.node_capacities = {Resources{8, 8192}};
  badplan.fault_plan.outages.push_back({/*node=*/3, 1.0, 2.0});
  EXPECT_THROW(Engine(badplan, policy), std::invalid_argument);
}

TEST(EngineValidation, RejectsUnsortedTrace) {
  EngineConfig cfg;
  cfg.node_capacities = {Resources{8, 8192}};
  Engine engine(cfg, std::make_shared<baselines::DefaultPolicy>());
  auto trace = workload::burst_trace(*catalog(), 2, 11);
  trace[0].arrival = 5.0;  // arrives after trace[1] at t=0
  EXPECT_THROW(engine.run(std::move(trace)), std::invalid_argument);
}

// ------------------------------------------------------------------ injector

TEST(FaultInjector, ChurnTimelineIsDeterministicAndAlternating) {
  FaultProfile profile;
  profile.seed = 42;
  profile.node_mtbf = 30.0;
  profile.node_mttr = 5.0;
  FaultInjector a(FaultPlan{}, profile, /*num_nodes=*/4, /*horizon=*/300.0);
  FaultInjector b(FaultPlan{}, profile, 4, 300.0);
  ASSERT_FALSE(a.churn().empty());
  ASSERT_EQ(a.churn().size(), b.churn().size());
  for (size_t i = 0; i < a.churn().size(); ++i) {
    EXPECT_EQ(a.churn()[i].time, b.churn()[i].time);
    EXPECT_EQ(a.churn()[i].node, b.churn()[i].node);
    EXPECT_EQ(a.churn()[i].down, b.churn()[i].down);
  }
  // Per node: strictly alternating down/up with increasing timestamps.
  for (NodeId n = 0; n < 4; ++n) {
    bool expect_down = true;
    double last = -1.0;
    for (const auto& ev : a.churn()) {
      if (ev.node != n) continue;
      EXPECT_EQ(ev.down, expect_down);
      EXPECT_GT(ev.time, last);
      last = ev.time;
      expect_down = !expect_down;
    }
  }
  // A different seed yields a different timeline.
  profile.seed = 43;
  FaultInjector c(FaultPlan{}, profile, 4, 300.0);
  bool differs = c.churn().size() != a.churn().size();
  for (size_t i = 0; !differs && i < a.churn().size(); ++i)
    differs = c.churn()[i].time != a.churn()[i].time;
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, MergesOverlappingScriptedAndSampledOutages) {
  FaultPlan plan;
  plan.outages.push_back({0, 10.0, 20.0});
  plan.outages.push_back({0, 15.0, 30.0});  // overlaps the first
  plan.outages.push_back({0, 40.0, kNever});
  FaultInjector inj(plan, FaultProfile{}, /*num_nodes=*/1, /*horizon=*/100.0);
  // Expect: down@10, up@30, down@40 (no recovery for the kNever outage).
  ASSERT_EQ(inj.churn().size(), 3u);
  EXPECT_TRUE(inj.churn()[0].down);
  EXPECT_DOUBLE_EQ(inj.churn()[0].time, 10.0);
  EXPECT_FALSE(inj.churn()[1].down);
  EXPECT_DOUBLE_EQ(inj.churn()[1].time, 30.0);
  EXPECT_TRUE(inj.churn()[2].down);
  EXPECT_DOUBLE_EQ(inj.churn()[2].time, 40.0);
}

TEST(FaultInjector, ScriptedWindowsShortCircuitWithoutRandomness) {
  FaultPlan plan;
  plan.ping_blackouts = {{kAllNodes, 2.0, 6.0}};
  plan.cold_start_failures = {{/*node=*/1, 0.0, 10.0}};
  plan.monitor_blackouts = {{0, 0.0, kNever}};
  FaultInjector inj(plan, FaultProfile{}, 2, 100.0);
  EXPECT_TRUE(inj.active());
  EXPECT_TRUE(inj.drop_health_ping(0, 3.0));
  EXPECT_FALSE(inj.drop_health_ping(0, 6.0));  // half-open window
  EXPECT_TRUE(inj.fail_cold_start(1, 5.0));
  EXPECT_FALSE(inj.fail_cold_start(0, 5.0));  // other node untargeted
  EXPECT_TRUE(inj.suppress_monitor_tick(0, 99.0));
  EXPECT_FALSE(inj.suppress_monitor_tick(1, 99.0));
  EXPECT_DOUBLE_EQ(inj.health_ping_delay(0, 3.0), 0.0);
}

TEST(FaultInjector, InactiveWhenNothingConfigured) {
  FaultInjector inj(FaultPlan{}, FaultProfile{}, 4, 100.0);
  EXPECT_FALSE(inj.active());
  EXPECT_TRUE(inj.churn().empty());
}

// --------------------------------------------------------------- node guards

TEST(NodeGuards, FinishWithNothingRunningThrows) {
  sim::Node node(0, Resources{8, 8192}, /*num_shards=*/1);
  EXPECT_THROW(node.invocation_finished(), std::logic_error);
  node.invocation_started();
  EXPECT_NO_THROW(node.invocation_finished());
  EXPECT_THROW(node.invocation_finished(), std::logic_error);
}

TEST(NodeGuards, DownNodeRejectsReservations) {
  sim::Node node(0, Resources{8, 8192}, 1);
  EXPECT_TRUE(node.try_reserve(0, Resources{1, 128}));
  node.release(0, Resources{1, 128});
  node.set_up(false);
  EXPECT_FALSE(node.try_reserve(0, Resources{1, 128}));
  node.set_up(true);
  EXPECT_TRUE(node.try_reserve(0, Resources{1, 128}));
}

// ----------------------------------------------------------------- churn e2e

/// Forwards everything to an inner LibraPolicy and, right after the crash
/// hook ran, checks the harvest-safety invariant: the dead node's pool holds
/// no idle entries and no outstanding grants.
class PoolInvariantObserver final : public sim::Policy {
 public:
  explicit PoolInvariantObserver(std::shared_ptr<core::LibraPolicy> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  void predict(Invocation& inv) override { inner_->predict(inv); }
  NodeId select_node(Invocation& inv, sim::EngineApi& api) override {
    return inner_->select_node(inv, api);
  }
  sim::AllocationPlan plan_allocation(Invocation& inv,
                                      sim::EngineApi& api) override {
    return inner_->plan_allocation(inv, api);
  }
  bool wants_monitor(const Invocation& inv) const override {
    return inner_->wants_monitor(inv);
  }
  void on_monitor(Invocation& inv, sim::EngineApi& api) override {
    inner_->on_monitor(inv, api);
  }
  void on_complete(Invocation& inv, sim::EngineApi& api) override {
    inner_->on_complete(inv, api);
  }
  void on_oom(Invocation& inv, sim::EngineApi& api) override {
    inner_->on_oom(inv, api);
  }
  void on_health_ping(NodeId node, sim::EngineApi& api) override {
    inner_->on_health_ping(node, api);
  }
  void on_node_down(NodeId node, sim::EngineApi& api) override {
    inner_->on_node_down(node, api);
    ++down_calls;
    pool_clean_after_down = pool_clean_after_down &&
                            inner_->pool(node).entry_count() == 0 &&
                            inner_->pool(node).outstanding_borrows() == 0;
  }
  void on_node_up(NodeId node, sim::EngineApi& api) override {
    inner_->on_node_up(node, api);
    ++up_calls;
  }
  sim::PolicyStats stats() const override { return inner_->stats(); }

  int down_calls = 0;
  int up_calls = 0;
  bool pool_clean_after_down = true;

 private:
  std::shared_ptr<core::LibraPolicy> inner_;
};

std::shared_ptr<core::LibraPolicy> make_libra() {
  core::ProfilerConfig pcfg;
  auto profiler = std::make_shared<core::Profiler>(pcfg, catalog());
  profiler->prewarm(*catalog(), 1234, 30);
  return core::LibraPolicy::with_coverage_scheduler(core::LibraPolicyConfig{},
                                                    profiler);
}

RunMetrics run_scripted_crash(PoolInvariantObserver** observer_out) {
  EngineConfig cfg = exp::multi_node_config();
  cfg.fault_plan.outages.push_back({/*node=*/0, /*down_at=*/5.0,
                                    /*up_at=*/20.0});
  auto observer = std::make_shared<PoolInvariantObserver>(make_libra());
  if (observer_out) *observer_out = observer.get();
  Engine engine(cfg, observer);
  auto m = engine.run(workload::multi_trace(*catalog(), /*rpm=*/120,
                                            /*seed=*/5));
  return m;
}

TEST(ChurnIntegration, ScriptedCrashRecoversSafely) {
  PoolInvariantObserver* obs = nullptr;
  EngineConfig cfg = exp::multi_node_config();
  cfg.fault_plan.outages.push_back({0, 5.0, 20.0});
  auto observer = std::make_shared<PoolInvariantObserver>(make_libra());
  obs = observer.get();
  Engine engine(cfg, observer);
  auto m = engine.run(workload::multi_trace(*catalog(), 120, 5));

  // The crash and the recovery both happened, and the dead node's pool was
  // fully drained before the engine reaped it.
  EXPECT_EQ(obs->down_calls, 1);
  EXPECT_EQ(obs->up_calls, 1);
  EXPECT_TRUE(obs->pool_clean_after_down);
  EXPECT_EQ(m.node_crashes, 1);
  EXPECT_EQ(m.node_recoveries, 1);
  ASSERT_EQ(m.recovery_latencies.size(), 1u);
  EXPECT_NEAR(m.recovery_latencies[0], 15.0, 1e-9);

  // Every invocation is accounted for: completed or (at worst) lost — never
  // silently stuck.
  EXPECT_EQ(m.incomplete, 0);
  for (const auto& rec : m.invocations) {
    EXPECT_TRUE(rec.completed || rec.lost) << "invocation " << rec.id;
    EXPECT_FALSE(rec.completed && rec.lost);
  }
  EXPECT_GT(m.goodput(), 0.9);
}

TEST(ChurnIntegration, SameSeedAndPlanReproduceBitIdenticalMetrics) {
  auto a = run_scripted_crash(nullptr);
  auto b = run_scripted_crash(nullptr);
  ASSERT_EQ(a.invocations.size(), b.invocations.size());
  for (size_t i = 0; i < a.invocations.size(); ++i) {
    const auto& ra = a.invocations[i];
    const auto& rb = b.invocations[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.lost, rb.lost);
    EXPECT_EQ(ra.fault_retries, rb.fault_retries);
    EXPECT_EQ(ra.finish, rb.finish);  // exact, not approximate
    EXPECT_EQ(ra.response_latency, rb.response_latency);
    EXPECT_EQ(ra.reassigned_core_seconds, rb.reassigned_core_seconds);
  }
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.lost_invocations, b.lost_invocations);
  EXPECT_EQ(a.stale_snapshot_decisions, b.stale_snapshot_decisions);
  EXPECT_EQ(a.makespan_end, b.makespan_end);
  EXPECT_EQ(a.policy.pool_revocations, b.policy.pool_revocations);
}

TEST(ChurnIntegration, ProbabilisticFaultsAreSeedReproducible) {
  auto run_once = [] {
    EngineConfig cfg = exp::multi_node_config();
    cfg.fault_profile.seed = 99;
    cfg.fault_profile.node_mtbf = 40.0;
    cfg.fault_profile.node_mttr = 5.0;
    cfg.fault_profile.ping_drop_prob = 0.05;
    cfg.fault_profile.cold_start_fail_prob = 0.02;
    cfg.placement_timeout = 60.0;
    Engine engine(cfg, std::make_shared<baselines::DefaultPolicy>());
    return engine.run(workload::multi_trace(*catalog(), 60, 3));
  };
  auto a = run_once();
  auto b = run_once();
  ASSERT_EQ(a.invocations.size(), b.invocations.size());
  for (size_t i = 0; i < a.invocations.size(); ++i) {
    EXPECT_EQ(a.invocations[i].finish, b.invocations[i].finish);
    EXPECT_EQ(a.invocations[i].lost, b.invocations[i].lost);
  }
  EXPECT_EQ(a.node_crashes, b.node_crashes);
  EXPECT_EQ(a.dropped_health_pings, b.dropped_health_pings);
  EXPECT_EQ(a.cold_start_failures, b.cold_start_failures);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
}

TEST(ChurnIntegration, CrashedWorkRetriesOntoSurvivingNode) {
  EngineConfig cfg;
  cfg.node_capacities = {Resources{16, 16384}, Resources{16, 16384}};
  cfg.num_shards = 1;
  cfg.fault_plan.outages.push_back({0, /*down_at=*/0.7, /*up_at=*/kNever});
  Engine engine(cfg, std::make_shared<baselines::DefaultPolicy>());
  auto m = engine.run(workload::burst_trace(*catalog(), 12, 21));
  EXPECT_EQ(m.node_crashes, 1);
  EXPECT_EQ(m.node_recoveries, 0);
  EXPECT_GT(m.fault_retries, 0);
  EXPECT_EQ(m.incomplete, 0);
  // Node 1 survives with enough capacity: the retried work must complete.
  size_t completed = 0;
  for (const auto& rec : m.invocations) completed += rec.completed ? 1 : 0;
  EXPECT_EQ(completed, m.invocations.size());
}

TEST(ChurnIntegration, RetryBudgetExhaustionLosesInvocations) {
  EngineConfig cfg = exp::single_node_config();
  cfg.fault_plan.outages.push_back({0, /*down_at=*/0.7, /*up_at=*/kNever});
  cfg.placement_timeout = 5.0;
  cfg.max_fault_retries = 1;
  Engine engine(cfg, std::make_shared<baselines::DefaultPolicy>());
  auto m = engine.run(workload::burst_trace(*catalog(), 5, 31));
  EXPECT_EQ(m.node_crashes, 1);
  EXPECT_GT(m.lost_invocations, 0);
  EXPECT_LT(m.goodput(), 1.0);
  EXPECT_EQ(m.incomplete, 0);  // lost, not stuck — the run terminated
  for (const auto& rec : m.invocations)
    EXPECT_TRUE(rec.completed || rec.lost);
}

TEST(ChurnIntegration, ColdStartFailureWindowRetriesThenSucceeds) {
  EngineConfig cfg = exp::single_node_config();
  cfg.fault_plan.cold_start_failures = {{kAllNodes, 0.0, 0.2}};
  Engine engine(cfg, std::make_shared<baselines::DefaultPolicy>());
  auto m = engine.run(workload::burst_trace(*catalog(), 3, 41));
  EXPECT_GT(m.cold_start_failures, 0);
  EXPECT_GT(m.fault_retries, 0);
  EXPECT_EQ(m.incomplete, 0);
  for (const auto& rec : m.invocations)
    EXPECT_TRUE(rec.completed || rec.lost);
}

TEST(ChurnIntegration, PingBlackoutCountsDropsWithoutLosingWork) {
  EngineConfig cfg = exp::multi_node_config();
  cfg.fault_plan.ping_blackouts = {{kAllNodes, 1.0, 6.0}};
  Engine engine(cfg, std::make_shared<baselines::DefaultPolicy>());
  auto m = engine.run(workload::multi_trace(*catalog(), 60, 7));
  EXPECT_GT(m.dropped_health_pings, 0);
  EXPECT_EQ(m.node_crashes, 0);
  EXPECT_DOUBLE_EQ(m.goodput(), 1.0);
}

TEST(ChurnIntegration, MonitorBlackoutBlindsTheSafeguard) {
  EngineConfig cfg = exp::single_node_config();
  cfg.fault_plan.monitor_blackouts = {{kAllNodes, 0.0, kNever}};
  Engine engine(cfg, make_libra());
  auto m = engine.run(workload::single_node_trace(*catalog(), 7));
  EXPECT_GT(m.suppressed_monitor_ticks, 0);
  EXPECT_EQ(m.policy.safeguard_triggers, 0);
}

/// Keeps sending work to node 0 no matter what — models a controller whose
/// health view lags a crash.
class PinnedPolicy final : public sim::Policy {
 public:
  std::string name() const override { return "pinned-to-node-0"; }
  void predict(Invocation& inv) override {
    inv.pred_demand = inv.user_alloc;
  }
  NodeId select_node(Invocation&, sim::EngineApi&) override { return 0; }
  sim::AllocationPlan plan_allocation(Invocation& inv,
                                      sim::EngineApi&) override {
    return {inv.user_alloc};
  }
};

TEST(ChurnIntegration, StaleHealthViewDecisionsAreCounted) {
  EngineConfig cfg;
  cfg.node_capacities = {Resources{8, 8192}, Resources{8, 8192}};
  cfg.num_shards = 1;
  cfg.fault_plan.outages.push_back({0, /*down_at=*/0.2, /*up_at=*/kNever});
  cfg.placement_timeout = 3.0;
  Engine engine(cfg, std::make_shared<PinnedPolicy>());
  auto m = engine.run(workload::burst_trace(*catalog(), 5, 51));
  // Every post-crash decision picked the dead node off the stale view.
  EXPECT_GT(m.stale_snapshot_decisions, 0);
  EXPECT_GT(m.lost_invocations, 0);
  EXPECT_EQ(m.incomplete, 0);
}

TEST(ChurnIntegration, FaultFreeRunsAreUnperturbed) {
  // The fault machinery must be invisible when nothing is configured: a run
  // with a default-constructed plan/profile matches one from before the
  // subsystem existed (no retries, losses, drops or suppressions).
  EngineConfig cfg = exp::multi_node_config();
  Engine engine(cfg, std::make_shared<baselines::DefaultPolicy>());
  auto m = engine.run(workload::multi_trace(*catalog(), 60, 7));
  EXPECT_EQ(m.node_crashes, 0);
  EXPECT_EQ(m.fault_retries, 0);
  EXPECT_EQ(m.lost_invocations, 0);
  EXPECT_EQ(m.dropped_health_pings, 0);
  EXPECT_EQ(m.stale_snapshot_decisions, 0);
  EXPECT_DOUBLE_EQ(m.goodput(), 1.0);
}

}  // namespace
}  // namespace libra
