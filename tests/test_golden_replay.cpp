// Golden-replay guard for the Cluster / Lifecycle / Controller decomposition:
// proves that the barrier-batched, speculate-then-commit sharded controller
// produces BIT-IDENTICAL RunMetrics to the pre-refactor monolithic engine,
// with 1 worker and with 4 workers, across baselines, Libra and Libra+Trust
// platforms and the order-dependent baseline schedulers.
//
// The pinned constants were captured from the monolithic engine (commit
// 54422fc, before the decomposition) with tools/golden_capture.cpp at the
// default RelWithDebInfo build; the capture was repeated at -O3 with the same
// result, so they are stable across optimization levels on this toolchain.
// If a deliberate semantic change moves them, re-run the capture tool and
// update the table — never update it to paper over an unexplained diff.
//
// Re-captured (libra, libra_trust, sched_jsq, sched_mws only) after the
// libra-lint unordered-iteration fixes: end-of-run finalization of unfinished
// invocations and the pool idle-integral accumulation now run in sorted key
// order instead of unordered_map bucket order, so record order and FP
// summation order no longer depend on the standard library's hash layout.
// default/freyr/sched_rr were bit-identical before and after, confirming the
// diff is exactly the ordering fix.
#include <gtest/gtest.h>

#include <memory>

#include "exp/digest.h"
#include "exp/platforms.h"
#include "exp/runner.h"
#include "workload/function_catalog.h"
#include "workload/trace.h"

namespace libra {
namespace {

struct GoldenCase {
  const char* name;
  uint64_t digest;  // captured from the pre-refactor engine
};

constexpr GoldenCase kGolden[] = {
    {"default", 0xf87d77ec968fee23ull},
    {"freyr", 0xb9ecae76596e2c0eull},
    {"libra", 0xbdec2ebdc6363975ull},
    {"libra_trust", 0x7892a708f69cac46ull},
    {"sched_rr", 0x59f634a72cbb53b6ull},
    {"sched_jsq", 0x9369a98c5da485c1ull},
    {"sched_mws", 0x4904b0ebd4f07e4aull},
};

std::shared_ptr<const sim::FunctionCatalog> catalog() {
  static auto cat =
      std::make_shared<const sim::FunctionCatalog>(workload::sebs_catalog());
  return cat;
}

// Builds the scenario fresh on every call: policies are stateful, so each
// (scenario, worker-count, controller-count) run needs its own instance.
uint64_t run_scenario(const std::string& name, int sched_workers,
                      int controllers = 1) {
  auto cat = catalog();
  sim::EngineConfig cfg;
  std::shared_ptr<sim::Policy> policy;
  std::vector<sim::Invocation> trace;
  if (name == "default" || name == "freyr" || name == "libra" ||
      name == "libra_trust") {
    cfg = exp::jetstream_config(8, 4);
    trace = workload::multi_trace(*cat, 120, 5);
    const exp::PlatformKind kind =
        name == "default"  ? exp::PlatformKind::kDefault
        : name == "freyr"  ? exp::PlatformKind::kFreyr
        : name == "libra"  ? exp::PlatformKind::kLibra
                           : exp::PlatformKind::kLibraTrust;
    policy = exp::make_platform(kind, cat);
  } else {
    cfg = exp::multi_node_config(4);
    trace = workload::multi_trace(*cat, 120, 7);
    const exp::SchedulerKind kind =
        name == "sched_rr"    ? exp::SchedulerKind::kRoundRobin
        : name == "sched_jsq" ? exp::SchedulerKind::kJsq
                              : exp::SchedulerKind::kMws;
    policy = exp::make_scheduler_platform(kind, cat);
  }
  cfg.sched_workers = sched_workers;
  cfg.control.num_controllers = controllers;
  const auto metrics = exp::run_experiment(cfg, policy, std::move(trace));
  return exp::run_metrics_digest(metrics);
}

class GoldenReplay : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenReplay, OneWorkerMatchesPreRefactorEngine) {
  const auto& c = GetParam();
  EXPECT_EQ(exp::digest_hex(run_scenario(c.name, 1)),
            exp::digest_hex(c.digest))
      << "scenario " << c.name << " diverged from the pre-refactor engine "
      << "with sched_workers=1";
}

TEST_P(GoldenReplay, FourWorkersMatchPreRefactorEngine) {
  const auto& c = GetParam();
  EXPECT_EQ(exp::digest_hex(run_scenario(c.name, 4)),
            exp::digest_hex(c.digest))
      << "scenario " << c.name << " diverged from the pre-refactor engine "
      << "with sched_workers=4 — the parallel speculate/commit merge must be "
      << "order-independent";
}

// Multi-controller digest identity (DESIGN.md §5k): with pass-through gossip
// and full fan-out, every controller's pool-view cache equals the policy's
// own piggybacked snapshot at all times, so sharding the catalog across four
// front ends — with work stealing enabled — must still reproduce the
// pre-refactor digests bit-for-bit, serial and parallel.
TEST_P(GoldenReplay, FourControllersOneWorkerMatchPreRefactorEngine) {
  const auto& c = GetParam();
  EXPECT_EQ(exp::digest_hex(run_scenario(c.name, 1, /*controllers=*/4)),
            exp::digest_hex(c.digest))
      << "scenario " << c.name << " diverged from the pre-refactor engine "
      << "with 4 controllers — catalog sharding, gossip caches or work "
      << "stealing leaked into engine behaviour";
}

TEST_P(GoldenReplay, FourControllersFourWorkersMatchPreRefactorEngine) {
  const auto& c = GetParam();
  EXPECT_EQ(exp::digest_hex(run_scenario(c.name, 4, /*controllers=*/4)),
            exp::digest_hex(c.digest))
      << "scenario " << c.name << " diverged from the pre-refactor engine "
      << "with 4 controllers and 4 sched workers";
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, GoldenReplay,
                         ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// The digest itself must be stable across identical runs (no iteration-order
// or address-dependent leakage into the hash).
TEST(GoldenReplayDigest, DeterministicAcrossIdenticalRuns) {
  EXPECT_EQ(run_scenario("libra", 1), run_scenario("libra", 1));
}

}  // namespace
}  // namespace libra
