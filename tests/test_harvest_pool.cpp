#include <gtest/gtest.h>

#include <thread>

#include "core/harvest_pool.h"

namespace libra::core {
namespace {

using sim::Resources;

TEST(HarvestPool, PutThenGetGrants) {
  HarvestResourcePool pool;
  pool.put(1, {2, 256}, /*est_completion=*/10.0, /*now=*/0.0);
  const auto grants = pool.get({1, 128}, /*borrower=*/9, 0.0);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].source, 1);
  EXPECT_DOUBLE_EQ(grants[0].amount.cpu, 1);
  EXPECT_DOUBLE_EQ(grants[0].amount.mem, 128);
  EXPECT_DOUBLE_EQ(pool.idle_total().cpu, 1);
}

TEST(HarvestPool, GetIsBestEffort) {
  HarvestResourcePool pool;
  pool.put(1, {1, 64}, 10.0, 0.0);
  const auto grants = pool.get({4, 512}, 9, 0.0);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_DOUBLE_EQ(grants[0].amount.cpu, 1);
  EXPECT_TRUE(pool.idle_total().is_zero());
}

TEST(HarvestPool, EmptyPoolGrantsNothing) {
  HarvestResourcePool pool;
  EXPECT_TRUE(pool.get({2, 128}, 9, 0.0).empty());
}

TEST(HarvestPool, TimelinessOrderLendsLongestLivedFirst) {
  HarvestResourcePool pool;
  pool.put(1, {1, 0}, /*expires*/ 5.0, 0.0);
  pool.put(2, {1, 0}, /*expires*/ 50.0, 0.0);  // lives longer
  const auto grants = pool.get({1, 0}, 9, 0.0);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].source, 2);
}

TEST(HarvestPool, BlindOrderIgnoresTimeliness) {
  HarvestResourcePool pool;
  pool.put(1, {1, 0}, 5.0, 0.0);
  pool.put(2, {1, 0}, 50.0, 0.0);
  HarvestResourcePool::GetOptions opt;
  opt.timeliness_order = false;  // Freyr mode: id order
  const auto grants = pool.get({1, 0}, 9, 0.0, opt);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].source, 1);
}

TEST(HarvestPool, SpansMultipleSources) {
  HarvestResourcePool pool;
  pool.put(1, {1, 0}, 30.0, 0.0);
  pool.put(2, {2, 0}, 40.0, 0.0);
  const auto grants = pool.get({3, 0}, 9, 0.0);
  EXPECT_EQ(grants.size(), 2u);
  double total = 0;
  for (const auto& g : grants) total += g.amount.cpu;
  EXPECT_DOUBLE_EQ(total, 3.0);
}

TEST(HarvestPool, MemExpiryFloorFiltersShortLivedMemory) {
  HarvestResourcePool pool;
  pool.put(1, {0, 512}, /*expires*/ 5.0, 0.0);
  pool.put(2, {0, 512}, /*expires*/ 100.0, 0.0);
  HarvestResourcePool::GetOptions opt;
  opt.mem_expiry_floor = 50.0;  // borrower runs until t=50
  const auto grants = pool.get({0, 1024}, 9, 0.0, opt);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].source, 2);
  EXPECT_DOUBLE_EQ(grants[0].amount.mem, 512);
}

TEST(HarvestPool, PreemptSourceRevokesOutstandingGrants) {
  HarvestResourcePool pool;
  pool.put(1, {4, 0}, 10.0, 0.0);
  pool.get({3, 0}, 9, 1.0);  // borrower 9 takes 3 cores
  const auto revs = pool.preempt_source(1, 2.0);
  ASSERT_EQ(revs.size(), 1u);
  EXPECT_EQ(revs[0].borrower, 9);
  EXPECT_DOUBLE_EQ(revs[0].amount.cpu, 3.0);
  EXPECT_TRUE(pool.idle_total().is_zero());
  EXPECT_EQ(pool.entry_count(), 0u);
}

TEST(HarvestPool, PreemptAggregatesPerBorrower) {
  HarvestResourcePool pool;
  pool.put(1, {4, 400}, 10.0, 0.0);
  pool.get({2, 0}, 9, 0.5);
  pool.get({1, 200}, 9, 0.6);
  const auto revs = pool.preempt_source(1, 1.0);
  ASSERT_EQ(revs.size(), 1u);
  EXPECT_DOUBLE_EQ(revs[0].amount.cpu, 3.0);
  EXPECT_DOUBLE_EQ(revs[0].amount.mem, 200.0);
}

TEST(HarvestPool, ReharvestReturnsToLiveSource) {
  HarvestResourcePool pool;
  pool.put(1, {4, 0}, 10.0, 0.0);
  pool.get({3, 0}, 9, 1.0);
  EXPECT_DOUBLE_EQ(pool.idle_total().cpu, 1.0);
  pool.reharvest(9, 2.0);  // borrower finished early; source still running
  EXPECT_DOUBLE_EQ(pool.idle_total().cpu, 4.0);
  // Re-entered volume keeps the original priority: lendable again.
  EXPECT_EQ(pool.get({4, 0}, 10, 3.0).size(), 1u);
}

TEST(HarvestPool, ReharvestAfterSourceGoneDropsVolume) {
  HarvestResourcePool pool;
  pool.put(1, {4, 0}, 10.0, 0.0);
  pool.get({3, 0}, 9, 1.0);
  pool.preempt_source(1, 2.0);
  pool.reharvest(9, 3.0);  // nothing to return to
  EXPECT_TRUE(pool.idle_total().is_zero());
}

TEST(HarvestPool, SnapshotReportsIdleEntriesOnly) {
  HarvestResourcePool pool;
  pool.put(1, {2, 100}, 10.0, 0.0);
  pool.put(2, {1, 0}, 20.0, 0.0);
  pool.get({1, 0}, 9, 0.0);  // drains entry 2 (longest-lived first)
  const auto status = pool.snapshot(1.0);
  ASSERT_EQ(status.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(status.entries[0].volume.cpu, 2.0);
  EXPECT_DOUBLE_EQ(status.taken_at, 1.0);
}

TEST(HarvestPool, IdleTimeIntegralsAccrue) {
  HarvestResourcePool pool;
  pool.put(1, {2, 100}, 100.0, /*now=*/0.0);
  // 2 cores idle for 10 seconds.
  EXPECT_NEAR(pool.idle_cpu_core_seconds(10.0), 20.0, 1e-9);
  EXPECT_NEAR(pool.idle_mem_mb_seconds(10.0), 1000.0, 1e-9);
  // Borrow everything: idle accrual stops.
  pool.get({2, 100}, 9, 10.0);
  EXPECT_NEAR(pool.idle_cpu_core_seconds(30.0), 20.0, 1e-9);
}

TEST(HarvestPool, MergingPutsAccumulateAndKeepLaterExpiry) {
  HarvestResourcePool pool;
  pool.put(1, {1, 0}, 10.0, 0.0);
  pool.put(1, {2, 0}, 30.0, 0.0);
  EXPECT_EQ(pool.entry_count(), 1u);
  EXPECT_DOUBLE_EQ(pool.idle_total().cpu, 3.0);
  const auto status = pool.snapshot(0.0);
  EXPECT_DOUBLE_EQ(status.entries[0].est_expiry, 30.0);
}

TEST(HarvestPool, PreemptSourceIsIdempotent) {
  HarvestResourcePool pool;
  pool.put(1, {2, 256}, 10.0, 0.0);
  pool.get({1, 128}, /*borrower=*/9, 0.0);
  const auto first = pool.preempt_source(1, 1.0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].borrower, 9);
  EXPECT_DOUBLE_EQ(first[0].amount.cpu, 1.0);
  EXPECT_EQ(pool.entry_count(), 0u);
  EXPECT_EQ(pool.outstanding_borrows(), 0u);
  // Preempting an already-preempted (or unknown) source changes nothing.
  EXPECT_TRUE(pool.preempt_source(1, 2.0).empty());
  EXPECT_TRUE(pool.preempt_source(77, 2.0).empty());
  EXPECT_EQ(pool.entry_count(), 0u);
}

TEST(HarvestPool, ReharvestAfterSourcePreemptedReturnsNothing) {
  HarvestResourcePool pool;
  pool.put(1, {2, 256}, 10.0, 0.0);
  pool.get({1, 128}, 9, 0.0);
  pool.preempt_source(1, 1.0);  // source gone; borrower's grant is void
  pool.reharvest(9, 2.0);
  EXPECT_EQ(pool.entry_count(), 0u);
  EXPECT_EQ(pool.outstanding_borrows(), 0u);
  EXPECT_TRUE(pool.idle_total().is_zero());
}

TEST(HarvestPool, PreemptAllDrainsEntriesAndAggregatesGrants) {
  HarvestResourcePool pool;
  pool.put(1, {2, 256}, 10.0, 0.0);
  pool.put(2, {3, 512}, 20.0, 0.0);
  pool.get({1.5, 200}, /*borrower=*/8, 0.0);   // spans entry 2 (+ maybe 1)
  pool.get({0.5, 64}, /*borrower=*/9, 0.0);
  const auto revocations = pool.preempt_all(1.0);
  sim::Resources revoked;
  for (const auto& rev : revocations) revoked += rev.amount;
  EXPECT_DOUBLE_EQ(revoked.cpu, 2.0);
  EXPECT_DOUBLE_EQ(revoked.mem, 264.0);
  EXPECT_EQ(pool.entry_count(), 0u);
  EXPECT_EQ(pool.outstanding_borrows(), 0u);
  EXPECT_TRUE(pool.idle_total().is_zero());
  EXPECT_TRUE(pool.preempt_all(2.0).empty());
  // Grants after the wipe come from nothing: the pool really is empty.
  EXPECT_TRUE(pool.get({1, 64}, 7, 3.0).empty());
}

TEST(HarvestPool, IdleIntegralsAreMonotoneUnderInterleavedOps) {
  // Fig. 10's idle-time integrals accumulate history; no put/get/preempt
  // sequence may ever make them shrink.
  HarvestResourcePool pool;
  double last_cpu = 0.0, last_mem = 0.0;
  auto check = [&](double now) {
    const double cpu = pool.idle_cpu_core_seconds(now);
    const double mem = pool.idle_mem_mb_seconds(now);
    EXPECT_GE(cpu, last_cpu - 1e-12);
    EXPECT_GE(mem, last_mem - 1e-12);
    last_cpu = cpu;
    last_mem = mem;
  };
  pool.put(1, {2, 256}, 100.0, 0.0);
  check(1.0);
  pool.get({1, 128}, 9, 1.0);
  check(2.0);
  pool.put(2, {4, 512}, 100.0, 2.0);
  check(3.0);
  pool.preempt_source(1, 3.0);
  check(4.0);
  pool.reharvest(9, 4.0);
  check(5.0);
  pool.preempt_all(5.0);
  check(6.0);
  check(10.0);  // pool empty: integrals frozen, never decreasing
  EXPECT_GT(last_cpu, 0.0);
  EXPECT_GT(last_mem, 0.0);
}

TEST(HarvestPool, ConcurrentAccessIsSafe) {
  // §5.1 "Concurrency": the pool must keep a consistent view under
  // concurrent access (mutex-protected in the implementation).
  HarvestResourcePool pool;
  for (int i = 0; i < 64; ++i)
    pool.put(i, {1, 64}, 1000.0, 0.0);
  std::vector<std::thread> threads;
  std::atomic<int> grants{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, &grants, t] {
      for (int i = 0; i < 200; ++i) {
        const auto g = pool.get({0.25, 16}, 1000 + t * 1000 + i, 1.0);
        if (!g.empty()) grants.fetch_add(1);
        pool.reharvest(1000 + t * 1000 + i, 2.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(grants.load(), 0);
  // All volume returned by reharvest: the pool is whole again.
  EXPECT_NEAR(pool.idle_total().cpu, 64.0, 1e-6);
}

}  // namespace
}  // namespace libra::core
