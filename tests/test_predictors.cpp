#include <gtest/gtest.h>

#include <memory>

#include "core/profiler.h"
#include "core/window_predictors.h"
#include "workload/function_catalog.h"
#include "workload/trace.h"

namespace libra::core {
namespace {

using sim::Invocation;
using sim::Resources;

Invocation sample_invocation(const sim::FunctionCatalog& cat, int func,
                             uint64_t seed) {
  util::Rng rng(seed);
  return workload::make_invocation(cat, 0, func,
                                   cat.at(func).sample_input(rng), 0.0);
}

TEST(UserConfigPredictor, PredictsExactlyUserAllocation) {
  UserConfigPredictor p;
  const auto cat = workload::sebs_catalog();
  auto inv = sample_invocation(cat, 0, 1);
  p.predict(inv);
  EXPECT_EQ(inv.pred_demand.cpu, inv.user_alloc.cpu);
  EXPECT_FALSE(inv.accelerable());
}

TEST(MovingWindow, ColdStartFallsBackToUserAlloc) {
  MovingWindowPredictor p(5);
  const auto cat = workload::sebs_catalog();
  auto inv = sample_invocation(cat, 1, 2);
  p.predict(inv);
  EXPECT_TRUE(inv.first_seen);
  EXPECT_EQ(inv.pred_demand.cpu, inv.user_alloc.cpu);
}

TEST(MovingWindow, PredictsWindowMaximum) {
  MovingWindowPredictor p(3);
  Observation obs;
  obs.func = 1;
  for (double cpu : {1.0, 3.0, 2.0}) {
    obs.observed_peak = {cpu, cpu * 100};
    obs.exec_duration = cpu;
    p.observe(obs);
  }
  const auto cat = workload::sebs_catalog();
  auto inv = sample_invocation(cat, 1, 3);
  p.predict(inv);
  EXPECT_DOUBLE_EQ(inv.pred_demand.cpu, 3.0);
  EXPECT_DOUBLE_EQ(inv.pred_demand.mem, 300.0);
  EXPECT_DOUBLE_EQ(inv.pred_duration, 3.0);
}

TEST(MovingWindow, OldObservationsAgeOut) {
  MovingWindowPredictor p(2);
  Observation obs;
  obs.func = 1;
  obs.observed_peak = {8.0, 800};
  obs.exec_duration = 8;
  p.observe(obs);
  obs.observed_peak = {1.0, 100};
  obs.exec_duration = 1;
  p.observe(obs);
  p.observe(obs);  // the 8-core observation falls out of the window
  const auto cat = workload::sebs_catalog();
  auto inv = sample_invocation(cat, 1, 4);
  p.predict(inv);
  EXPECT_DOUBLE_EQ(inv.pred_demand.cpu, 1.0);
}

TEST(Ewma, ConvergesTowardRecentObservations) {
  EwmaPredictor p(0.5);
  Observation obs;
  obs.func = 2;
  obs.observed_peak = {4.0, 400};
  obs.exec_duration = 10;
  p.observe(obs);
  obs.observed_peak = {2.0, 200};
  obs.exec_duration = 6;
  for (int i = 0; i < 10; ++i) p.observe(obs);
  const auto cat = workload::sebs_catalog();
  auto inv = sample_invocation(cat, 2, 5);
  p.predict(inv);
  EXPECT_NEAR(inv.pred_demand.cpu, 2.0, 0.05);
  EXPECT_NEAR(inv.pred_duration, 6.0, 0.1);
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = std::make_shared<const sim::FunctionCatalog>(
        workload::sebs_catalog());
    ProfilerConfig cfg;
    profiler_ = std::make_unique<Profiler>(cfg, catalog_);
  }
  std::shared_ptr<const sim::FunctionCatalog> catalog_;
  std::unique_ptr<Profiler> profiler_;
};

TEST_F(ProfilerTest, FirstInvocationServedWithUserConfig) {
  auto inv = sample_invocation(*catalog_, 0, 6);
  profiler_->predict(inv);
  EXPECT_TRUE(inv.first_seen);
  EXPECT_DOUBLE_EQ(inv.pred_demand.cpu, inv.user_alloc.cpu);
}

TEST_F(ProfilerTest, ClassifiesAllTenFunctionsCorrectly) {
  profiler_->prewarm(*catalog_, 1234, 20);
  for (int f = 0; f < 10; ++f) {
    const auto metrics = profiler_->train_metrics(f);
    ASSERT_TRUE(metrics.has_value()) << "func " << f;
    EXPECT_EQ(metrics->classified_size_related,
              catalog_->at(f).size_related())
        << "func " << catalog_->at(f).name();
  }
}

TEST_F(ProfilerTest, SizeRelatedPredictionsTrackDemand) {
  profiler_->prewarm(*catalog_, 1234, 20);
  util::Rng rng(7);
  double abs_err = 0;
  int n = 0;
  for (int i = 0; i < 60; ++i) {
    auto inv = workload::make_invocation(
        *catalog_, i, /*DH*/ 4, catalog_->at(4).sample_input(rng), 0.0);
    profiler_->predict(inv);
    EXPECT_FALSE(inv.first_seen);
    EXPECT_TRUE(inv.pred_size_related);
    abs_err += std::abs(inv.pred_demand.cpu - inv.truth.demand.cpu);
    ++n;
  }
  // Spikes (~6%) are unpredictable by design; the average error stays small.
  EXPECT_LT(abs_err / n, 1.0);
}

TEST_F(ProfilerTest, UnrelatedPredictionsAreConservativeTail) {
  profiler_->prewarm(*catalog_, 1234, 40);
  util::Rng rng(8);
  auto inv = workload::make_invocation(*catalog_, 0, /*VP*/ 5,
                                       catalog_->at(5).sample_input(rng), 0.0);
  profiler_->predict(inv);
  EXPECT_FALSE(inv.pred_size_related);
  // p99 of a 2..8 core demand distribution: near the top.
  EXPECT_GE(inv.pred_demand.cpu, 6.0);
}

TEST_F(ProfilerTest, ProfilingWindowProbesBeforeHistogramReady) {
  // Without prewarm, the first VP invocation trains (histogram mode), and
  // subsequent ones inside the window are probes at the platform max.
  auto first = sample_invocation(*catalog_, 5, 9);
  profiler_->predict(first);
  EXPECT_TRUE(first.first_seen);
  auto second = sample_invocation(*catalog_, 5, 10);
  profiler_->predict(second);
  EXPECT_TRUE(second.profiling_probe);
  EXPECT_GE(second.pred_demand.cpu, 8.0);
}

TEST_F(ProfilerTest, MemStrikesDisableMemoryHarvesting) {
  EXPECT_FALSE(profiler_->mem_harvest_disabled(3, 3));
  profiler_->record_mem_safeguard_strike(3);
  profiler_->record_mem_safeguard_strike(3);
  EXPECT_FALSE(profiler_->mem_harvest_disabled(3, 3));
  profiler_->record_mem_safeguard_strike(3);
  EXPECT_TRUE(profiler_->mem_harvest_disabled(3, 3));
}

TEST_F(ProfilerTest, ForceFlagsOverrideClassification) {
  ProfilerConfig hist_cfg;
  hist_cfg.force_histogram = true;
  Profiler hist(hist_cfg, catalog_);
  hist.prewarm(*catalog_, 1, 20);
  EXPECT_FALSE(hist.train_metrics(0)->classified_size_related);

  ProfilerConfig ml_cfg;
  ml_cfg.force_ml = true;
  Profiler ml(ml_cfg, catalog_);
  ml.prewarm(*catalog_, 1, 20);
  EXPECT_TRUE(ml.train_metrics(5)->classified_size_related);

  ProfilerConfig bad;
  bad.force_ml = bad.force_histogram = true;
  EXPECT_THROW(Profiler(bad, catalog_), std::invalid_argument);
}

TEST_F(ProfilerTest, TrainMetricsShowTableTwoShape) {
  profiler_->prewarm(*catalog_, 1234, 20);
  // Size-related functions: high accuracy, high R².
  for (int f = 0; f < 5; ++f) {
    const auto m = *profiler_->train_metrics(f);
    EXPECT_GE(m.cpu_accuracy, 0.8) << f;
    EXPECT_GE(m.duration_r2, 0.8) << f;
  }
  // Size-unrelated: poor accuracy and/or non-positive R² (Table 2 bottom).
  for (int f = 5; f < 10; ++f) {
    const auto m = *profiler_->train_metrics(f);
    EXPECT_TRUE(m.cpu_accuracy < 0.8 || m.duration_r2 < 0.5) << f;
  }
}

}  // namespace
}  // namespace libra::core
