#include <gtest/gtest.h>

#include <cmath>

#include "sim/container_pool.h"
#include "sim/event_queue.h"
#include "sim/execution_model.h"
#include "sim/node.h"
#include "sim/types.h"

namespace libra::sim {
namespace {

// ---------------- EventQueue ----------------

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule(1.0, [&order, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsDispatch) {
  EventQueue q;
  bool fired = false;
  const auto id = q.schedule(1.0, [&] { fired = true; });
  q.cancel(id);
  q.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const auto id = q.schedule(1.0, [] {});
  q.run();
  q.cancel(id);  // must not crash or corrupt state
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_after(1.0, chain);
  };
  q.schedule(0.0, chain);
  q.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
}

// ---------------- Resources ----------------

TEST(Resources, ArithmeticAndFits) {
  Resources a{4, 1024}, b{1, 256};
  EXPECT_EQ((a + b).cpu, 5);
  EXPECT_EQ((a - b).mem, 768);
  EXPECT_TRUE(b.fits_in(a));
  EXPECT_FALSE(a.fits_in(b));
  EXPECT_TRUE((a * 0).is_zero());
  EXPECT_EQ(Resources::min(a, b).cpu, 1);
  EXPECT_EQ(Resources::max(a, b).mem, 1024);
}

TEST(Resources, ClampNonNegative) {
  Resources r{-1, 5};
  const auto c = r.clamped_non_negative();
  EXPECT_EQ(c.cpu, 0);
  EXPECT_EQ(c.mem, 5);
}

// ---------------- Node ----------------

TEST(Node, ShardSlicesAreEven) {
  Node n(0, {32, 32768}, 4);
  EXPECT_DOUBLE_EQ(n.shard_capacity().cpu, 8);
  EXPECT_DOUBLE_EQ(n.shard_capacity().mem, 8192);
}

TEST(Node, ReserveRespectsShardSlice) {
  Node n(0, {32, 32768}, 4);
  EXPECT_TRUE(n.try_reserve(0, {8, 1024}));
  // Shard 0's slice is exhausted on CPU; shard 1 is independent.
  EXPECT_FALSE(n.try_reserve(0, {1, 0}));
  EXPECT_TRUE(n.try_reserve(1, {8, 1024}));
  EXPECT_DOUBLE_EQ(n.allocated().cpu, 16);
  EXPECT_DOUBLE_EQ(n.free().cpu, 16);
}

TEST(Node, ReleaseRestoresCapacity) {
  Node n(0, {8, 8192}, 1);
  ASSERT_TRUE(n.try_reserve(0, {8, 1024}));
  n.release(0, {8, 1024});
  EXPECT_TRUE(n.try_reserve(0, {8, 1024}));
}

TEST(Node, OverReleaseThrows) {
  Node n(0, {8, 8192}, 1);
  ASSERT_TRUE(n.try_reserve(0, {2, 100}));
  EXPECT_THROW(n.release(0, {4, 100}), std::logic_error);
}

TEST(Node, InvalidConstructionThrows) {
  EXPECT_THROW(Node(0, {0, 100}, 1), std::invalid_argument);
  EXPECT_THROW(Node(0, {1, 100}, 0), std::invalid_argument);
}

// ---------------- ContainerPool ----------------

TEST(ContainerPool, ColdThenWarm) {
  ContainerPool pool;
  const auto first = pool.acquire(1, 0.0);
  EXPECT_TRUE(first.cold);
  pool.release(1, 1.0);
  const auto second = pool.acquire(1, 2.0);
  EXPECT_FALSE(second.cold);
  EXPECT_LT(second.delay, first.delay);
  EXPECT_EQ(pool.total_cold_starts(), 1);
  EXPECT_EQ(pool.total_warm_starts(), 1);
}

TEST(ContainerPool, KeepAliveExpiry) {
  ContainerPoolConfig cfg;
  cfg.keep_alive = 10.0;
  ContainerPool pool(cfg);
  pool.acquire(1, 0.0);
  pool.release(1, 1.0);
  EXPECT_EQ(pool.warm_count(1, 5.0), 1);
  EXPECT_EQ(pool.warm_count(1, 20.0), 0);
  EXPECT_TRUE(pool.acquire(1, 20.0).cold);
}

TEST(ContainerPool, PerFunctionIsolation) {
  ContainerPool pool;
  pool.acquire(1, 0.0);
  pool.release(1, 1.0);
  EXPECT_TRUE(pool.acquire(2, 2.0).cold);
}

TEST(ContainerPool, MaxWarmCap) {
  ContainerPoolConfig cfg;
  cfg.max_warm_per_function = 2;
  ContainerPool pool(cfg);
  for (int i = 0; i < 5; ++i) pool.release(1, static_cast<double>(i));
  EXPECT_EQ(pool.warm_count(1, 5.0), 2);
}

// ---------------- ExecutionModel ----------------

TEST(ExecutionModel, RateCappedByDemand) {
  ExecutionModel m;
  DemandProfile p{{4, 512}, 100.0, 64.0};
  EXPECT_DOUBLE_EQ(m.rate({8, 1024}, p), 4.0);  // extra CPU is useless
  EXPECT_DOUBLE_EQ(m.rate({2, 1024}, p), 2.0);  // throttled
}

TEST(ExecutionModel, ExecTimeInverseInRate) {
  ExecutionModel m;
  DemandProfile p{{4, 512}, 100.0, 64.0};
  EXPECT_DOUBLE_EQ(m.exec_time({4, 512}, p), 25.0);
  EXPECT_DOUBLE_EQ(m.exec_time({2, 512}, p), 50.0);
}

TEST(ExecutionModel, MemoryPenaltySlowsProgress) {
  ExecutionModel m;
  DemandProfile p{{2, 1000}, 10.0, 64.0};
  const double full = m.rate({2, 1000}, p);
  const double squeezed = m.rate({2, 500}, p);
  EXPECT_LT(squeezed, full);
  EXPECT_GT(squeezed, 0.0);
  // Penalty floor keeps heavy paging from stalling completely.
  const double floored = m.rate({2, 80}, p);
  EXPECT_GE(floored, full * m.config().mem_penalty_floor * 0.999);
}

TEST(ExecutionModel, BelowOomFloorStalls) {
  ExecutionModel m;
  DemandProfile p{{2, 1000}, 10.0, 256.0};
  EXPECT_TRUE(m.below_oom_floor({2, 100}, p));
  EXPECT_DOUBLE_EQ(m.rate({2, 100}, p), 0.0);
  EXPECT_TRUE(std::isinf(m.exec_time({2, 100}, p)));
}

TEST(ExecutionModel, MemUsageRampsToPeak) {
  ExecutionModel m;
  DemandProfile p{{2, 1000}, 10.0, 100.0};
  EXPECT_DOUBLE_EQ(m.mem_usage(0.0, p), 100.0);
  EXPECT_DOUBLE_EQ(m.mem_usage(1.0, p), 1000.0);
  EXPECT_LT(m.mem_usage(0.3, p), 1000.0);
  EXPECT_GT(m.mem_usage(0.3, p), 100.0);
  // Past the ramp end the usage is pinned at the peak.
  EXPECT_DOUBLE_EQ(m.mem_usage(0.9, p), 1000.0);
}

// Property: rate is monotone non-decreasing in each allocation axis.
class RateMonotone : public ::testing::TestWithParam<double> {};

TEST_P(RateMonotone, MonotoneInAllocation) {
  ExecutionModel m;
  DemandProfile p{{GetParam(), 800}, 50.0, 96.0};
  double prev = 0.0;
  for (double cpu = 0.5; cpu <= 10.0; cpu += 0.5) {
    const double r = m.rate({cpu, 800}, p);
    EXPECT_GE(r, prev - 1e-12);
    prev = r;
  }
  prev = 0.0;
  for (double mem = 100; mem <= 1600; mem += 100) {
    const double r = m.rate({4, mem}, p);
    EXPECT_GE(r, prev - 1e-12);
    prev = r;
  }
}

INSTANTIATE_TEST_SUITE_P(Demands, RateMonotone,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace libra::sim
