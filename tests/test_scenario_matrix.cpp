// Scenario-matrix extension tests: spot drain notices (honored vs ignored),
// budget-free drain evictions (satellite of the retry-budget edge fix),
// per-tenant harvest quotas, and the hardened NaN/inf-aware validation of
// EngineConfig / FaultPlan / FaultProfile.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/harvest_pool.h"
#include "core/libra_policy.h"
#include "exp/platforms.h"
#include "sim/engine.h"
#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"
#include "util/audit.h"
#include "workload/function_catalog.h"
#include "workload/trace.h"

namespace libra {
namespace {

using core::HarvestResourcePool;
using core::LibraPolicy;
using core::LibraPolicyConfig;
using sim::Engine;
using sim::EngineConfig;
using sim::Resources;
using sim::RunMetrics;
using sim::fault::kNever;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::shared_ptr<const sim::FunctionCatalog> catalog() {
  static auto cat =
      std::make_shared<const sim::FunctionCatalog>(workload::sebs_catalog());
  return cat;
}

std::shared_ptr<LibraPolicy> make_libra(bool honor_drain_notice) {
  LibraPolicyConfig cfg;
  cfg.honor_drain_notice = honor_drain_notice;
  return LibraPolicy::with_coverage_scheduler(
      cfg, exp::make_libra_profiler(catalog(), exp::PlatformTuning{}));
}

/// Records the owning policy's node-0 pool entry count at the moment the
/// drain notice has been fully processed (policy hook + migration done).
class DrainProbe final : public sim::EngineAuditHook {
 public:
  explicit DrainProbe(LibraPolicy* policy) : policy_(policy) {}
  void on_engine_event(sim::EngineApi&, const sim::EngineEvent& ev) override {
    if (std::string_view(ev.what) == "drain_notice" && ev.node == 0)
      entries_at_notice_ =
          static_cast<long>(policy_->pool(0).entry_count());
  }
  long entries_at_notice() const { return entries_at_notice_; }

 private:
  LibraPolicy* policy_;
  long entries_at_notice_ = -1;
};

EngineConfig spot_config(bool spot, double notice) {
  EngineConfig cfg;
  cfg.node_capacities = {Resources{32, 32768}, Resources{32, 32768}};
  cfg.spot_drain_notice = notice;
  cfg.fault_plan.outages.push_back({/*node=*/0, /*down_at=*/10.0, kNever, spot});
  return cfg;
}

RunMetrics run_spot(std::shared_ptr<LibraPolicy> policy, bool spot,
                    double notice, DrainProbe* probe = nullptr) {
  EngineConfig cfg = spot_config(spot, notice);
  if (probe != nullptr) cfg.audit_hook = probe;
  Engine engine(cfg, policy);
  return engine.run(workload::multi_trace(*catalog(), /*rpm=*/120, /*seed=*/5));
}

// ------------------------------------------------------- spot drain notices

TEST(SpotDrain, HonoredNoticePullsHarvestsBackAndEvictsBudgetFree) {
  auto policy = make_libra(/*honor_drain_notice=*/true);
  DrainProbe probe(policy.get());
  const RunMetrics m = run_spot(policy, /*spot=*/true, /*notice=*/2.0, &probe);

  EXPECT_EQ(m.drain_notices, 1);
  EXPECT_GT(m.drain_evictions, 0);
  // §Policy::on_drain_notice honored: by the end of the notice event the
  // doomed node's pool holds nothing — everything was preemptively released.
  EXPECT_EQ(probe.entries_at_notice(), 0);
  // Budget-free migration: nothing was charged to the crash-retry budget and
  // nothing was lost — the node emptied gracefully before the crash landed.
  EXPECT_EQ(m.fault_retries, 0);
  for (const auto& rec : m.invocations) EXPECT_EQ(rec.fault_retries, 0);
  EXPECT_EQ(m.lost_invocations, 0);
  EXPECT_DOUBLE_EQ(m.goodput(), 1.0);
}

TEST(SpotDrain, IgnoredNoticeLeavesPoolExposedUntilCrash) {
  auto policy = make_libra(/*honor_drain_notice=*/false);
  DrainProbe probe(policy.get());
  const RunMetrics m = run_spot(policy, /*spot=*/true, /*notice=*/2.0, &probe);

  // The notice still fires and the node agent still migrates invocations off
  // (engine-side semantics don't depend on the policy's cooperation)...
  EXPECT_EQ(m.drain_notices, 1);
  EXPECT_GT(m.drain_evictions, 0);
  // ...but a platform without the hook keeps lending from the doomed pool:
  // its inventory is still there when the notice has been processed, and is
  // lost to the crash instead of being pulled back gracefully.
  EXPECT_GT(probe.entries_at_notice(), 0);
}

TEST(SpotDrain, UnannouncedCrashChargesRetryBudget) {
  auto policy = make_libra(/*honor_drain_notice=*/true);
  // Same outage, spot=false: no notice, the crash lands on a full node.
  const RunMetrics m = run_spot(policy, /*spot=*/false, /*notice=*/2.0);
  EXPECT_EQ(m.drain_notices, 0);
  EXPECT_EQ(m.drain_evictions, 0);
  // Invocations died with the node and were re-dispatched on the crash-retry
  // budget — the contrast that makes the drain path's fault_retries == 0
  // meaningful.
  EXPECT_GT(m.fault_retries, 0);
}

TEST(SpotDrain, ZeroNoticeBehavesLikePlainCrash) {
  auto policy = make_libra(/*honor_drain_notice=*/true);
  const RunMetrics m = run_spot(policy, /*spot=*/true, /*notice=*/0.0);
  EXPECT_EQ(m.drain_notices, 0);
  EXPECT_EQ(m.drain_evictions, 0);
  EXPECT_GT(m.fault_retries, 0);
}

// --------------------------------------------------- per-tenant pool quotas

TEST(TenantQuota, GetClampsToQuotaRoomPerAxis) {
  HarvestResourcePool pool;
  pool.set_tenant_quota(0, {2.0, 1024.0});
  pool.put(/*source=*/1, {8.0, 8192.0}, /*est_completion=*/100.0, /*now=*/0.0);

  HarvestResourcePool::GetOptions opt;
  opt.tenant = 0;
  const auto grants = pool.get({4.0, 4096.0}, /*borrower=*/10, 1.0, opt);
  ASSERT_FALSE(grants.empty());
  const Resources out = pool.tenant_outstanding(0);
  EXPECT_DOUBLE_EQ(out.cpu, 2.0);
  EXPECT_DOUBLE_EQ(out.mem, 1024.0);

  // Quota exhausted: the next get for the same tenant takes nothing.
  EXPECT_TRUE(pool.get({4.0, 4096.0}, /*borrower=*/11, 2.0, opt).empty());

  // Tenants without a registered quota stay unrestricted.
  HarvestResourcePool::GetOptions other;
  other.tenant = 1;
  const auto unrestricted = pool.get({4.0, 4096.0}, /*borrower=*/12, 3.0, other);
  ASSERT_FALSE(unrestricted.empty());
  const Resources out1 = pool.tenant_outstanding(1);
  EXPECT_DOUBLE_EQ(out1.cpu, 4.0);
  EXPECT_DOUBLE_EQ(out1.mem, 4096.0);
}

TEST(TenantQuota, ReharvestAndPreemptAllFreeQuotaRoom) {
  HarvestResourcePool pool;
  pool.set_tenant_quota(0, {2.0, 1024.0});
  pool.put(1, {8.0, 8192.0}, 100.0, 0.0);
  HarvestResourcePool::GetOptions opt;
  opt.tenant = 0;
  ASSERT_FALSE(pool.get({4.0, 4096.0}, 10, 1.0, opt).empty());
  ASSERT_TRUE(pool.get({1.0, 512.0}, 11, 2.0, opt).empty());

  // Quota room is derived from live borrow records, so returning the grants
  // frees it automatically.
  pool.reharvest(/*borrower=*/10, 3.0);
  EXPECT_TRUE(pool.tenant_outstanding(0).is_zero());
  ASSERT_FALSE(pool.get({1.0, 512.0}, 12, 4.0, opt).empty());

  // preempt_all (node crash / drain pullback) revokes everything: quota
  // accounting must read zero afterwards, never negative or stale.
  const auto revocations = pool.preempt_all(5.0);
  ASSERT_FALSE(revocations.empty());
  EXPECT_TRUE(pool.tenant_outstanding(0).is_zero());
  EXPECT_EQ(pool.outstanding_borrows(), 0u);
}

TEST(TenantQuota, AuditCatchesSeededViolation) {
  HarvestResourcePool pool;
  pool.set_tenant_quota(0, {2.0, 1024.0});
  pool.put(1, {1.0, 64.0}, 100.0, 0.0);

  long failures = 0;
  std::string detail;
  auto prev = util::audit::set_failure_handler(
      [&](const util::audit::Diagnostic& d) {
        ++failures;
        if (detail.empty()) detail = d.detail;
      });
  pool.corrupt_tenant_for_audit_test(/*source=*/1, /*borrower=*/2,
                                     /*tenant=*/0, {100.0, 100000.0});
  pool.audit_now(1.0);
  util::audit::set_failure_handler(prev);

  EXPECT_GT(failures, 0);
  EXPECT_NE(detail.find("tenant quota exceeded"), std::string::npos) << detail;
}

// ------------------------------------------------- NaN/inf-proof validation

TEST(ValidationHardening, EngineConfigRejectsNaNAndInf) {
  EngineConfig good;
  good.node_capacities = {Resources{8, 8192}};
  EXPECT_NO_THROW(good.validate());

  EngineConfig nan_notice = good;
  nan_notice.spot_drain_notice = kNaN;
  EXPECT_THROW(nan_notice.validate(), std::invalid_argument);

  EngineConfig inf_delay = good;
  inf_delay.monitor_interval = kInf;
  EXPECT_THROW(inf_delay.validate(), std::invalid_argument);

  EngineConfig nan_cap = good;
  nan_cap.node_capacities = {Resources{kNaN, 8192}};
  EXPECT_THROW(nan_cap.validate(), std::invalid_argument);

  EngineConfig neg_backoff = good;
  neg_backoff.retry_backoff_base = -0.1;
  EXPECT_THROW(neg_backoff.validate(), std::invalid_argument);
}

TEST(ValidationHardening, FaultPlanRejectsNaNTimesAndInvertedWindows) {
  sim::fault::FaultPlan plan;
  plan.outages.push_back({0, kNaN, 2.0});
  EXPECT_THROW(plan.validate(2), std::invalid_argument);

  plan = {};
  plan.outages.push_back({0, 5.0, 4.0});  // up before down
  EXPECT_THROW(plan.validate(2), std::invalid_argument);

  plan = {};
  plan.ping_blackouts.push_back({0, kNaN, 10.0});
  EXPECT_THROW(plan.validate(2), std::invalid_argument);

  plan = {};
  plan.ping_blackouts.push_back({0, 10.0, kNaN});  // NaN `until` (inverted)
  EXPECT_THROW(plan.validate(2), std::invalid_argument);

  plan = {};
  plan.monitor_blackouts.push_back({0, 10.0, 10.0});  // empty window
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(ValidationHardening, FaultPlanBoundsPredictionFaultTargets) {
  sim::fault::FaultPlan plan;
  sim::fault::PredictionFault p;
  p.func = 7;
  p.from = 0.0;
  p.until = 10.0;
  plan.prediction_faults.push_back(p);
  // Without a catalog bound any non-negative func passes...
  EXPECT_NO_THROW(plan.validate(2));
  // ...with one, out-of-range targets are rejected.
  EXPECT_THROW(plan.validate(2, /*num_functions=*/4), std::invalid_argument);
  EXPECT_NO_THROW(plan.validate(2, /*num_functions=*/8));

  plan.prediction_faults[0].severity = kNaN;
  EXPECT_THROW(plan.validate(2, 8), std::invalid_argument);

  plan.prediction_faults[0].severity = 2.0;
  plan.prediction_faults[0].kind = sim::fault::PredFaultKind::kDrift;
  plan.prediction_faults[0].until = kNever;  // drift needs a finite end
  EXPECT_THROW(plan.validate(2, 8), std::invalid_argument);
}

TEST(ValidationHardening, FaultProfileRejectsNaNProbabilities) {
  sim::fault::FaultProfile profile;
  profile.ping_drop_prob = kNaN;
  EXPECT_THROW(profile.validate(), std::invalid_argument);

  profile = {};
  profile.node_mtbf = kInf;
  EXPECT_THROW(profile.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace libra
