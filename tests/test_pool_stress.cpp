// Multi-threaded stress tests for HarvestResourcePool. Named HarvestPool*
// so the tsan-pool CI job (-R HarvestPool) picks them up. Fixed seeds make
// the per-thread operation mix reproducible; the interleavings themselves
// come from the scheduler, which is the point — every operation re-runs the
// pool's conservation audit, so a torn update anywhere surfaces as either a
// TSan report or an audit diagnostic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/harvest_pool.h"
#include "util/audit.h"
#include "util/rng.h"

namespace libra::core {
namespace {

using sim::InvocationId;
using sim::Resources;

/// Monotonic sim clock shared by all workers: each op advances it by one
/// tick so audits always see a self-consistent `now` (per-thread clocks
/// would count spurious clock regressions, which is allowed but noisy).
double next_tick(std::atomic<long>& clock) {
  return 0.001 * static_cast<double>(clock.fetch_add(1) + 1);
}

TEST(HarvestPoolStress, ConcurrentMixedOpsPreserveInvariants) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;

  HarvestResourcePool pool;
  std::atomic<long> clock{0};
  const long failures_before = util::audit::failures_observed();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(1234 + static_cast<uint64_t>(t));  // fixed seed per thread
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Each thread owns a disjoint id range for sources and borrowers so
        // a preempt_source never races a put to the *same* source from
        // another thread at the semantic level (the pool must still be
        // internally consistent either way).
        const InvocationId source = 1000 * (t + 1) + rng.uniform_int(0, 19);
        const InvocationId borrower = 100000 * (t + 1) + rng.uniform_int(0, 9);
        const double now = next_tick(clock);
        switch (rng.uniform_int(0, 9)) {
          case 0:
          case 1:
          case 2:
          case 3: {  // put: harvest some volume
            Resources vol{rng.uniform(0.1, 2.0), rng.uniform(16.0, 256.0)};
            pool.put(source, vol, now + rng.uniform(0.5, 5.0), now);
            break;
          }
          case 4:
          case 5:
          case 6: {  // get: borrow best-effort
            HarvestResourcePool::GetOptions opt;
            opt.timeliness_order = (i % 2 == 0);
            pool.get({rng.uniform(0.1, 1.5), rng.uniform(16.0, 128.0)},
                     borrower, now, opt);
            break;
          }
          case 7:  // reharvest: borrower finished
            pool.reharvest(borrower, now);
            break;
          case 8:  // preemptive release of one source
            pool.preempt_source(source, now);
            break;
          default: {  // readers: consistent snapshots under contention
            const auto st = pool.debug_state();
            (void)st;
            const auto ii = pool.idle_integrals(now);
            EXPECT_GE(ii.cpu_core_seconds, 0.0);
            EXPECT_GE(ii.mem_mb_seconds, 0.0);
            pool.snapshot(now);
            break;
          }
        }
        // Every op is followed by a full conservation audit from this
        // thread, interleaved arbitrarily with the other workers' mutations.
        pool.audit_now(next_tick(clock));
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(util::audit::failures_observed(), failures_before);
  pool.audit_now(next_tick(clock));

  // The final state must still satisfy conservation exactly: per source,
  // idle + outstanding == harvested.
  const auto st = pool.debug_state();
  for (const auto& e : st.entries) {
    double borrowed_cpu = 0.0, borrowed_mem = 0.0;
    for (const auto& b : st.borrows) {
      if (b.source == e.source) {
        borrowed_cpu += b.amount.cpu;
        borrowed_mem += b.amount.mem;
      }
    }
    EXPECT_NEAR(e.idle.cpu + borrowed_cpu, e.harvested.cpu, 1e-6);
    EXPECT_NEAR(e.idle.mem + borrowed_mem, e.harvested.mem, 1e-6);
  }
}

TEST(HarvestPoolStress, ConcurrentPreemptAllNeverLeaksGrants) {
  constexpr int kThreads = 6;
  constexpr int kRounds = 150;

  HarvestResourcePool pool;
  std::atomic<long> clock{0};
  const long failures_before = util::audit::failures_observed();

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(99 + static_cast<uint64_t>(t));
      for (int i = 0; i < kRounds; ++i) {
        const double now = next_tick(clock);
        if (t == 0 && i % 10 == 9) {
          // One thread periodically simulates a node crash.
          pool.preempt_all(now);
        } else {
          pool.put(10 * (t + 1) + rng.uniform_int(0, 3),
                   {rng.uniform(0.1, 1.0), rng.uniform(16.0, 64.0)},
                   now + 2.0, now);
          pool.get({0.5, 32.0}, 500 + t, now);
        }
        pool.audit_now(next_tick(clock));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(util::audit::failures_observed(), failures_before);

  // After a final crash-teardown the pool must be completely empty.
  pool.preempt_all(next_tick(clock));
  const auto st = pool.debug_state();
  EXPECT_TRUE(st.entries.empty());
  EXPECT_TRUE(st.borrows.empty());
  EXPECT_EQ(pool.outstanding_borrows(), 0u);
}

// Regression for the torn (cpu, mem) idle-integral read: the per-axis
// getters each take the lock separately, so a writer slipping between the
// two calls could produce a pair that never existed. idle_integrals() reads
// both under one acquisition; with every entry holding mem = 128 x cpu, any
// torn pair breaks the exact ratio.
TEST(HarvestPoolStress, IdleIntegralPairIsNeverTorn) {
  constexpr double kRatio = 128.0;
  HarvestResourcePool pool;
  std::atomic<long> clock{0};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    util::Rng rng(7);
    for (int i = 0; i < 4000; ++i) {
      const double now = next_tick(clock);
      const double cpu = rng.uniform(0.1, 1.0);
      pool.put(1 + (i % 8), {cpu, kRatio * cpu}, now + 1.0, now);
      if (i % 16 == 15) pool.preempt_all(now);
    }
    stop.store(true);
  });

  long reads = 0;
  do {  // at least one read even if the writer wins the race outright
    const double now = 0.001 * static_cast<double>(clock.load());
    const auto ii = pool.idle_integrals(now);
    // Both axes accrue from the same entries over the same intervals, so
    // the consistent pair preserves the volume ratio exactly.
    EXPECT_NEAR(ii.mem_mb_seconds, kRatio * ii.cpu_core_seconds,
                1e-6 + 1e-9 * ii.mem_mb_seconds);
    ++reads;
  } while (!stop.load());
  writer.join();
  EXPECT_GT(reads, 0);
}

}  // namespace
}  // namespace libra::core
