// libra-lint fixture: explicit static_cast / lround / floor conversions in
// ledger arithmetic must not fire ledger-narrowing.
#include <cmath>

namespace fixture {

struct Resources {
  double cpu = 0.0;
  double mem = 0.0;
};

inline long explicit_narrowing(const Resources& r) {
  const long cores = static_cast<long>(std::floor(r.cpu));
  const double mb = r.mem;
  return cores + static_cast<long>(std::lround(mb));
}

}  // namespace fixture
