// libra-lint fixture: ledger-narrowing fires five times when analyzed under
// a ledger rule path (src/core/harvest_pool_fixture.cpp): one float keyword,
// two C-style casts, and two implicit double->integer declarations (the
// `cores` line carries both a cast and a narrowing-decl finding).
namespace fixture {

struct Resources {
  double cpu = 0.0;
  double mem = 0.0;
};

inline long narrow_all(const Resources& r) {
  float ratio = 0.5f;
  long cores = (long)r.cpu;
  int mb = r.mem;
  return cores + mb + (long)ratio;
}

}  // namespace fixture
