// libra-lint fixture: unordered-iteration must fire on the range-for and on
// the .begin() iterator walk; the SymbolIndex pass learns `items` from the
// member declaration below (same virtual file stem).
#include <unordered_map>

namespace fixture {

struct Host {
  std::unordered_map<int, double> items;
};

inline double sum(const Host& h) {
  double total = 0.0;
  for (const auto& [key, value] : h.items) total += value;
  return total;
}

inline int first_key(Host& h) {
  auto it = h.items.begin();
  return it == h.items.end() ? -1 : it->first;
}

}  // namespace fixture
