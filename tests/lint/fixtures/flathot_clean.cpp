// libra-lint fixture: flat-hot-path stays quiet on flat index-addressed
// members, and a reasoned ALLOW covers the one deliberate map member (a
// setup-time table that is never touched per decision).
#include <map>
#include <vector>

namespace fixture {

class Store {
 public:
  void note(long id);

 private:
  std::vector<double> by_slot_;
  std::vector<std::vector<long>> per_node_;
  // LIBRA_LINT_ALLOW(flat-hot-path): setup-time quota table, not touched per decision
  std::map<int, double> quotas_;
};

}  // namespace fixture
