// libra-lint fixture: the sorted-snapshot idiom — the collect loop carries a
// reasoned ALLOW (the self-test asserts it is honored, i.e. present but
// suppressed), and ordered-map iteration never fires at all.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Host {
  std::unordered_map<int, double> items;
};

inline std::vector<int> sorted_keys(const Host& h) {
  std::vector<int> keys;
  // LIBRA_LINT_ALLOW(unordered-iteration): collects keys into a vector that is sorted before use
  for (const auto& [key, value] : h.items) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

inline double ordered_sum(const std::map<int, double>& m) {
  double total = 0.0;
  for (const auto& [key, value] : m) total += value;
  return total;
}

}  // namespace fixture
