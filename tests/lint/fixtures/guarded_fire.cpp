// libra-lint fixture: guarded-by-coverage fires twice in Tracker (two
// unannotated mutable members of a util::Mutex owner) and once in Legacy
// (raw std::mutex member).
#include <mutex>
#include <string>

namespace fixture {

class Tracker {
 public:
  void add(double v);

 private:
  mutable util::Mutex mu_;
  double total_ = 0.0;
  std::string name_;
};

class Legacy {
 private:
  std::mutex mu_;
};

}  // namespace fixture
