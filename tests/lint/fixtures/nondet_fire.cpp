// libra-lint fixture: every nondeterminism source fires when analyzed under
// a sim-core rule path (the self-test uses src/sim/nondet_fire.cpp). Never
// compiled — token-level input for tests/test_lint_fixtures.cpp.
#include <chrono>
#include <cstdlib>
#include <functional>
#include <random>

namespace fixture {

inline int roll() { return std::rand(); }

inline const char* home() { return std::getenv("HOME"); }

inline double wall() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

inline unsigned hw_seed() { return std::random_device{}(); }

inline size_t keyed(const void* p) { return std::hash<const void*>{}(p); }

}  // namespace fixture
