// libra-lint fixture: flat-hot-path fires three times when analyzed under a
// designated hot-path rule path — an unordered_map member, a std::map
// member, and a map nested inside a vector member (still a map per element).
// Locals inside member functions never fire: the check is about resident
// per-decision state, not scratch aggregation.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

class Store {
 public:
  void note(long id) {
    std::map<long, double> scratch;  // local: clean
    scratch[id] = 1.0;
  }

 private:
  std::unordered_map<long, double> by_id_;
  std::map<int, std::string> names_;
  std::vector<std::map<int, double>> per_node_;
  std::vector<long> order_;  // flat member: clean
};

}  // namespace fixture
