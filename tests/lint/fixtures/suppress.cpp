// libra-lint fixture for the suppression grammar, analyzed with only
// nondeterminism-source enabled:
//   - a reasoned ALLOW on the line above covers the next line (suppressed),
//   - a bare call with no ALLOW stays unsuppressed,
//   - a missing ': <reason>' and an unknown check name each produce an
//     unsuppressable bad-suppression finding, and the lines they were meant
//     to cover stay unsuppressed.
#include <chrono>
#include <cstdlib>

namespace fixture {

// LIBRA_LINT_ALLOW(nondeterminism-source): fixture exercising next-line coverage
inline auto stamped() { return std::chrono::steady_clock::now(); }

inline int fires() { return std::rand(); }

// LIBRA_LINT_ALLOW(nondeterminism-source)
inline int missing_reason() { return std::rand(); }

// LIBRA_LINT_ALLOW(no-such-check): the check name does not exist
inline int unknown_check() { return std::rand(); }

}  // namespace fixture
