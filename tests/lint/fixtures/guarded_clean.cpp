// libra-lint fixture: a fully annotated util::Mutex owner — guarded members
// carry LIBRA_GUARDED_BY, and const/atomic/condition_variable members are
// exempt by type.
#include <atomic>
#include <condition_variable>

namespace fixture {

class Tracker {
 public:
  void add(double v);

 private:
  mutable util::Mutex mu_;
  double total_ LIBRA_GUARDED_BY(mu_) = 0.0;
  long count_ LIBRA_GUARDED_BY(mu_) = 0;
  const int capacity_ = 8;
  std::atomic<long> hits_{0};
  std::condition_variable drained_;
};

}  // namespace fixture
