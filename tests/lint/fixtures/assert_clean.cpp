// libra-lint fixture: LIBRA_AUDIT_CHECK and identifiers merely containing
// "assert" must not fire bare-assert.
namespace fixture {

struct Checker {
  void assert_ok();
};

inline void check(int x, Checker& c) {
  LIBRA_AUDIT_CHECK(x > 0, "x must be positive");
  c.assert_ok();
}

}  // namespace fixture
