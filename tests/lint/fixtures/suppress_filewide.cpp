// libra-lint fixture: LIBRA_LINT_ALLOW_FILE(bare-assert): fixture proving file-wide coverage
// Both asserts below must be reported as findings but suppressed by the
// file-wide marker above.
#include <cassert>

namespace fixture {

inline void first(int x) { assert(x > 0); }

inline void second(int x) { assert(x < 100); }

}  // namespace fixture
