// libra-lint fixture: a bare assert() in src/ must fire bare-assert.
#include <cassert>

namespace fixture {

inline void check(int x) {
  assert(x > 0);
}

}  // namespace fixture
