// libra-lint fixture: deterministic idioms that must NOT fire
// nondeterminism-source — randomness via a seeded Rng, time via the sim
// queue's member now() (member access is not a wall clock).
#include <cstdint>

namespace fixture {

struct Rng {
  uint64_t next();
  Rng fork(uint64_t stream);
};

struct EventQueue {
  double now() const;
};

inline uint64_t draw(Rng& rng) { return rng.fork(7).next(); }

inline double stamp(const EventQueue& queue) { return queue.now(); }

}  // namespace fixture
