// Streaming-equivalence guard for the pull-based TraceSource path: a
// materialized trace pulled through Engine::run(gen::TraceSource&) must
// reproduce the pre-refactor golden replay digests BIT-FOR-BIT (same pinned
// constants as tests/test_golden_replay.cpp), with 1 and 4 scheduler
// workers, with and without invocation-record recycling. Also checks the
// sketch-backed sink mode (retain_records off): its aggregates must match
// the retained records, and live memory must track the in-flight count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exp/digest.h"
#include "exp/platforms.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "exp/streaming_collector.h"
#include "gen/synthetic_source.h"
#include "util/stats.h"
#include "workload/function_catalog.h"
#include "workload/materialized_source.h"
#include "workload/trace.h"

namespace libra {
namespace {

struct StreamCase {
  const char* name;
  uint64_t digest;  // pinned in tests/test_golden_replay.cpp
};

// Same constants as the materialized golden-replay table: the streaming
// admission path must be event-for-event identical, not merely similar.
constexpr StreamCase kGolden[] = {
    {"default", 0xf87d77ec968fee23ull},
    {"freyr", 0xb9ecae76596e2c0eull},
    {"libra", 0xbdec2ebdc6363975ull},
    {"libra_trust", 0x7892a708f69cac46ull},
    {"sched_rr", 0x59f634a72cbb53b6ull},
    {"sched_jsq", 0x9369a98c5da485c1ull},
    {"sched_mws", 0x4904b0ebd4f07e4aull},
};

std::shared_ptr<const sim::FunctionCatalog> catalog() {
  static auto cat =
      std::make_shared<const sim::FunctionCatalog>(workload::sebs_catalog());
  return cat;
}

void build_scenario(const std::string& name, sim::EngineConfig* cfg,
                    std::shared_ptr<sim::Policy>* policy,
                    std::vector<sim::Invocation>* trace) {
  auto cat = catalog();
  if (name == "default" || name == "freyr" || name == "libra" ||
      name == "libra_trust") {
    *cfg = exp::jetstream_config(8, 4);
    *trace = workload::multi_trace(*cat, 120, 5);
    const exp::PlatformKind kind =
        name == "default"  ? exp::PlatformKind::kDefault
        : name == "freyr"  ? exp::PlatformKind::kFreyr
        : name == "libra"  ? exp::PlatformKind::kLibra
                           : exp::PlatformKind::kLibraTrust;
    *policy = exp::make_platform(kind, cat);
  } else {
    *cfg = exp::multi_node_config(4);
    *trace = workload::multi_trace(*cat, 120, 7);
    const exp::SchedulerKind kind =
        name == "sched_rr"    ? exp::SchedulerKind::kRoundRobin
        : name == "sched_jsq" ? exp::SchedulerKind::kJsq
                              : exp::SchedulerKind::kMws;
    *policy = exp::make_scheduler_platform(kind, cat);
  }
}

uint64_t run_streamed(const std::string& name, int sched_workers,
                      bool recycle) {
  sim::EngineConfig cfg;
  std::shared_ptr<sim::Policy> policy;
  std::vector<sim::Invocation> trace;
  build_scenario(name, &cfg, &policy, &trace);
  cfg.sched_workers = sched_workers;
  cfg.recycle_records = recycle;
  workload::MaterializedSource source(std::move(trace));
  const auto metrics = exp::run_experiment(cfg, policy, source);
  return exp::run_metrics_digest(metrics);
}

class StreamingGolden : public ::testing::TestWithParam<StreamCase> {};

TEST_P(StreamingGolden, OneWorkerMatchesGoldenDigest) {
  const auto& c = GetParam();
  EXPECT_EQ(exp::digest_hex(run_streamed(c.name, 1, false)),
            exp::digest_hex(c.digest))
      << "streaming admission diverged from the materialized path for "
      << c.name;
}

TEST_P(StreamingGolden, FourWorkersMatchGoldenDigest) {
  const auto& c = GetParam();
  EXPECT_EQ(exp::digest_hex(run_streamed(c.name, 4, false)),
            exp::digest_hex(c.digest))
      << "streaming admission diverged from the materialized path for "
      << c.name << " with sched_workers=4";
}

TEST_P(StreamingGolden, RecyclingPreservesGoldenDigest) {
  const auto& c = GetParam();
  EXPECT_EQ(exp::digest_hex(run_streamed(c.name, 1, true)),
            exp::digest_hex(c.digest))
      << "record recycling perturbed the replay for " << c.name;
}

TEST_P(StreamingGolden, RecyclingWithFourWorkersPreservesGoldenDigest) {
  // Slot recycling and the parallel speculate/commit barriers must compose:
  // a recycled slab slot re-used mid-run cannot leak stale state into the
  // flat store's lookups or the prediction barrier's memo pass.
  const auto& c = GetParam();
  EXPECT_EQ(exp::digest_hex(run_streamed(c.name, 4, true)),
            exp::digest_hex(c.digest))
      << "record recycling + 4 sched workers perturbed the replay for "
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, StreamingGolden,
                         ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---------------- sink mode (retain_records off) ----------------

TEST(Streaming, SinkAggregatesMatchRetainedRecords) {
  // Reference: retained records through the materialized path.
  sim::EngineConfig cfg;
  std::shared_ptr<sim::Policy> policy;
  std::vector<sim::Invocation> trace;
  build_scenario("libra", &cfg, &policy, &trace);
  auto trace_copy = trace;
  const auto retained = exp::run_experiment(cfg, policy, std::move(trace));

  // Sink mode: no record vector, records recycled, collector sketches.
  sim::EngineConfig scfg;
  std::shared_ptr<sim::Policy> spolicy;
  std::vector<sim::Invocation> unused;
  build_scenario("libra", &scfg, &spolicy, &unused);
  scfg.retain_records = false;
  scfg.recycle_records = true;
  exp::StreamingCollector collector;
  scfg.record_sink = &collector;
  workload::MaterializedSource source(std::move(trace_copy));
  const auto streamed = exp::run_experiment(scfg, spolicy, source);

  EXPECT_TRUE(streamed.invocations.empty());
  ASSERT_EQ(collector.records(),
            static_cast<long>(retained.invocations.size()));
  EXPECT_EQ(streamed.finalized_records,
            static_cast<long>(retained.invocations.size()));

  long retained_completed = 0, retained_cold = 0;
  for (const auto& rec : retained.invocations) {
    if (rec.completed) ++retained_completed;
    if (rec.cold_start) ++retained_cold;
  }
  EXPECT_EQ(collector.completed(), retained_completed);
  EXPECT_EQ(streamed.finalized_completed, retained_completed);
  EXPECT_EQ(collector.cold_starts(), retained_cold);
  EXPECT_EQ(streamed.cold_starts, retained.cold_starts);
  EXPECT_EQ(streamed.oom_events, retained.oom_events);
  EXPECT_DOUBLE_EQ(collector.goodput(), retained.goodput());

  // Sketch quantiles are approximate (log buckets, growth 2): within one
  // bucket of the exact values.
  const auto exact = retained.response_latencies();
  exp::QuantileEvaluator sketch(collector.latency());
  EXPECT_TRUE(sketch.sketched());
  for (double p : {50.0, 90.0, 99.0}) {
    const double e = util::percentile(exact, p);
    const double s = sketch.quantile(p);
    EXPECT_GE(s, e / 2.0) << p;
    EXPECT_LE(s, e * 2.0) << p;
  }
}

TEST(Streaming, RecyclingKeepsLiveRecordsBelowTraceLength) {
  sim::EngineConfig cfg;
  std::shared_ptr<sim::Policy> policy;
  std::vector<sim::Invocation> trace;
  build_scenario("default", &cfg, &policy, &trace);
  const size_t n = trace.size();
  cfg.retain_records = false;
  cfg.recycle_records = true;
  workload::MaterializedSource source(std::move(trace));
  const auto m = exp::run_experiment(cfg, policy, source);
  EXPECT_EQ(m.finalized_records, static_cast<long>(n));
  EXPECT_GT(m.peak_live_records, 0);
  // The whole point of recycling: live records track in-flight count, not
  // stream length. multi_trace(120) spreads arrivals over a minute, so the
  // engine must never have held every record at once.
  EXPECT_LT(m.peak_live_records, static_cast<long>(n));
}

// ---------------- synthetic source end-to-end ----------------

TEST(Streaming, SyntheticSourceIsDeterministicAcrossWorkerCounts) {
  gen::GenConfig gcfg;
  gcfg.functions = 200;
  gcfg.rpm = 3000.0;
  gcfg.duration = 60.0;
  gcfg.seed = 99;
  const auto run = [&](int workers) {
    auto catalog = std::make_shared<const sim::FunctionCatalog>(
        gen::synthetic_catalog(gcfg));
    gen::SyntheticSource source(gcfg, catalog);
    auto cfg = exp::jetstream_config(8, 4);
    cfg.sched_workers = workers;
    auto policy = exp::make_platform(exp::PlatformKind::kDefault, catalog);
    return exp::run_metrics_digest(exp::run_experiment(cfg, policy, source));
  };
  const uint64_t one = run(1);
  EXPECT_EQ(one, run(1)) << "same seed must replay bit-identically";
  EXPECT_EQ(one, run(4)) << "worker count must not perturb the replay";
}

}  // namespace
}  // namespace libra
