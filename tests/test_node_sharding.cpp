// Shard accounting edge cases for sim::Node (§6.4 horizontal capacity
// sharding): slice accounting across a crash-and-reap cycle, reserve/release
// round trips when there are more shards than the cluster has nodes, and
// capacity-slice rounding with odd shard counts.
#include <gtest/gtest.h>

#include "sim/node.h"

namespace libra::sim {
namespace {

TEST(NodeSharding, ShardFreeRestoredAfterDownNodeReap) {
  Node n(0, {12.0, 12.0}, 3);
  ASSERT_TRUE(n.try_reserve(0, {2.0, 2.0}));
  ASSERT_TRUE(n.try_reserve(1, {3.0, 3.0}));
  ASSERT_TRUE(n.try_reserve(2, {1.0, 1.0}));
  n.invocation_started();
  n.invocation_started();
  n.invocation_started();

  // Crash: the engine reaps every victim — each release targets the shard
  // that made the reservation, mirroring kill_invocation.
  n.set_up(false);
  n.invocation_finished();
  n.release(0, {2.0, 2.0});
  n.invocation_finished();
  n.release(1, {3.0, 3.0});
  n.invocation_finished();
  n.release(2, {1.0, 1.0});
  n.check_quiescent();  // aborts on any surviving reservation

  // Every slice is whole again, but a down node admits nothing.
  const Resources slice = n.shard_capacity();
  for (ShardId s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(n.shard_free(s).cpu, slice.cpu);
    EXPECT_DOUBLE_EQ(n.shard_free(s).mem, slice.mem);
  }
  EXPECT_FALSE(n.try_reserve(0, {1.0, 1.0}));

  // Recovery: the node rejoins empty and admits again.
  n.set_up(true);
  EXPECT_TRUE(n.try_reserve(0, {1.0, 1.0}));
  EXPECT_DOUBLE_EQ(n.allocated().cpu, 1.0);
  n.release(0, {1.0, 1.0});
}

TEST(NodeSharding, ReserveReleaseRoundTripWithMoreShardsThanNodes) {
  // A single node split across 8 scheduler shards (num_shards > node count
  // is routine in the sharding sweeps): each shard owns a 1/8 slice, and a
  // round trip through every shard must land back at a pristine node.
  Node n(0, {16.0, 32.0}, 8);
  const Resources slice = n.shard_capacity();
  EXPECT_DOUBLE_EQ(slice.cpu, 2.0);
  EXPECT_DOUBLE_EQ(slice.mem, 4.0);

  for (ShardId s = 0; s < 8; ++s) {
    // The full slice fits; a hair more than the slice must not, even though
    // the node as a whole still has room.
    EXPECT_FALSE(n.try_reserve(s, {slice.cpu + 0.01, slice.mem}));
    ASSERT_TRUE(n.try_reserve(s, slice));
    EXPECT_DOUBLE_EQ(n.shard_free(s).cpu, 0.0);
  }
  EXPECT_DOUBLE_EQ(n.free().cpu, 0.0);
  EXPECT_DOUBLE_EQ(n.free().mem, 0.0);

  for (ShardId s = 0; s < 8; ++s) n.release(s, slice);
  EXPECT_DOUBLE_EQ(n.allocated().cpu, 0.0);
  EXPECT_DOUBLE_EQ(n.allocated().mem, 0.0);
  n.check_quiescent();
  for (ShardId s = 0; s < 8; ++s) {
    EXPECT_DOUBLE_EQ(n.shard_free(s).cpu, slice.cpu);
    EXPECT_DOUBLE_EQ(n.shard_free(s).mem, slice.mem);
  }
}

TEST(NodeSharding, OddShardCountSliceRounding) {
  // 10 cores / 3 shards: the slice is a non-terminating binary fraction.
  // The slices must tile the node — reserving every full slice succeeds and
  // leaves whole-node free within double rounding, never negative by more
  // than an ulp-scale epsilon.
  Node n(0, {10.0, 10.0}, 3);
  const Resources slice = n.shard_capacity();
  EXPECT_NEAR(slice.cpu * 3.0, 10.0, 1e-12);

  for (ShardId s = 0; s < 3; ++s) ASSERT_TRUE(n.try_reserve(s, slice));
  EXPECT_NEAR(n.free().cpu, 0.0, 1e-12);
  EXPECT_NEAR(n.free().mem, 0.0, 1e-12);

  // No shard can take anything more once its slice is exhausted.
  for (ShardId s = 0; s < 3; ++s)
    EXPECT_FALSE(n.try_reserve(s, {1e-6, 1e-6}));

  for (ShardId s = 0; s < 3; ++s) n.release(s, slice);
  n.check_quiescent();
  EXPECT_NEAR(n.free().cpu, 10.0, 1e-12);
}

TEST(NodeSharding, ReserveRejectsNegativeAndReleaseGuardsUnderflow) {
  Node n(0, {4.0, 4.0}, 2);
  EXPECT_THROW(n.try_reserve(0, {-1.0, 1.0}), std::invalid_argument);
  ASSERT_TRUE(n.try_reserve(0, {1.0, 1.0}));
  // Releasing more than the shard holds is an accounting bug.
  EXPECT_THROW(n.release(0, {2.0, 2.0}), std::logic_error);
}

}  // namespace
}  // namespace libra::sim
