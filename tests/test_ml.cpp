#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.h"
#include "ml/forest.h"
#include "ml/histogram.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/svm.h"
#include "ml/tree.h"

namespace libra::ml {
namespace {

Dataset two_blob_classification(size_t n, util::Rng& rng) {
  // Class 0 around (0,0), class 1 around (4,4): linearly separable-ish.
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    const double cx = label ? 4.0 : 0.0;
    d.add_classification({cx + rng.normal(0, 0.5), cx + rng.normal(0, 0.5)},
                         label);
  }
  return d;
}

Dataset linear_regression_data(size_t n, util::Rng& rng) {
  // y = 3 + 2 x0 - x1 + noise
  Dataset d;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-5, 5), x1 = rng.uniform(-5, 5);
    d.add_regression({x0, x1}, 3 + 2 * x0 - x1 + rng.normal(0, 0.01));
  }
  return d;
}

TEST(Metrics, Accuracy) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3, 4}, {1, 2, 0, 4}), 0.75);
  EXPECT_THROW(accuracy({1}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(accuracy({}, {}), std::invalid_argument);
}

TEST(Metrics, R2PerfectAndMeanPredictor) {
  std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r2_score(y, y), 1.0);
  std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(r2_score(y, mean_pred), 0.0, 1e-12);
}

TEST(Metrics, R2CanBeVeryNegative) {
  // Table 2 shows values like -475; the metric must not clamp.
  std::vector<double> y = {1, 1.1, 0.9, 1.05};
  std::vector<double> bad = {100, -50, 80, -30};
  EXPECT_LT(r2_score(y, bad), -100.0);
}

TEST(Metrics, ConstantTargetEdgeCase) {
  std::vector<double> y = {2, 2, 2};
  EXPECT_DOUBLE_EQ(r2_score(y, y), 1.0);
  EXPECT_DOUBLE_EQ(r2_score(y, {1, 2, 3}), 0.0);
}

TEST(Metrics, Mae) {
  EXPECT_DOUBLE_EQ(mae({1, 2}, {2, 4}), 1.5);
}

TEST(Dataset, SplitPreservesRowsAndFraction) {
  util::Rng rng(3);
  auto d = two_blob_classification(100, rng);
  auto split = split_dataset(d, 0.7, rng);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.test.size(), 30u);
  EXPECT_TRUE(split.train.has_labels());
  EXPECT_THROW(split_dataset(d, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(split_dataset(d, 1.0, rng), std::invalid_argument);
}

TEST(Dataset, NumClasses) {
  Dataset d;
  d.add_classification({0.0}, 0);
  d.add_classification({1.0}, 4);
  EXPECT_EQ(d.num_classes(), 5);
  EXPECT_THROW(d.add_classification({1.0}, -1), std::invalid_argument);
}

TEST(MinMaxScaler, MapsToUnitBox) {
  MinMaxScaler sc;
  sc.fit({{0, 10}, {10, 30}});
  auto t = sc.transform({5, 20});
  EXPECT_DOUBLE_EQ(t[0], 0.5);
  EXPECT_DOUBLE_EQ(t[1], 0.5);
}

TEST(MinMaxScaler, ConstantFeatureMapsToHalf) {
  MinMaxScaler sc;
  sc.fit({{7.0}, {7.0}});
  EXPECT_DOUBLE_EQ(sc.transform({7.0})[0], 0.5);
}

TEST(SolveLinearSystem, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10  -> x = 1, y = 3
  auto x = solve_linear_system({{2, 1}, {1, 3}}, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(SolveLinearSystem, ThrowsOnSingular) {
  EXPECT_THROW(solve_linear_system({{1, 1}, {2, 2}}, {1, 2}),
               std::runtime_error);
}

TEST(LinearRegressor, RecoversCoefficients) {
  util::Rng rng(5);
  auto d = linear_regression_data(200, rng);
  LinearRegressor lr;
  lr.fit(d);
  EXPECT_NEAR(lr.predict({0, 0}), 3.0, 0.05);
  EXPECT_NEAR(lr.predict({1, 0}), 5.0, 0.05);
  EXPECT_NEAR(lr.predict({0, 1}), 2.0, 0.05);
}

TEST(LinearRegressor, PredictBeforeFitThrows) {
  LinearRegressor lr;
  EXPECT_THROW(lr.predict({1.0}), std::logic_error);
}

TEST(LogisticClassifier, SeparatesBlobs) {
  util::Rng rng(7);
  auto d = two_blob_classification(200, rng);
  auto split = split_dataset(d, 0.7, rng);
  LogisticClassifier clf;
  clf.fit(split.train);
  EXPECT_GE(accuracy(split.test.labels, clf.predict_all(split.test.x)), 0.95);
}

TEST(SvmClassifier, SeparatesBlobs) {
  util::Rng rng(11);
  auto d = two_blob_classification(200, rng);
  auto split = split_dataset(d, 0.7, rng);
  SvmClassifier svm;
  svm.fit(split.train);
  EXPECT_GE(accuracy(split.test.labels, svm.predict_all(split.test.x)), 0.95);
}

TEST(MlpClassifier, LearnsXorLikePattern) {
  // XOR is not linearly separable; the hidden layer must earn its keep.
  util::Rng rng(13);
  Dataset d;
  for (int i = 0; i < 400; ++i) {
    const int a = rng.bernoulli(0.5), b = rng.bernoulli(0.5);
    d.add_classification(
        {a + rng.normal(0, 0.1), b + rng.normal(0, 0.1)}, a ^ b);
  }
  auto split = split_dataset(d, 0.7, rng);
  MlpOptions opt;
  opt.hidden = 16;
  opt.epochs = 300;
  MlpClassifier mlp(opt);
  mlp.fit(split.train);
  EXPECT_GE(accuracy(split.test.labels, mlp.predict_all(split.test.x)), 0.9);
}

TEST(MlpRegressor, FitsSmoothFunction) {
  util::Rng rng(17);
  Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0, 1);
    d.add_regression({x}, std::sin(3 * x));
  }
  auto split = split_dataset(d, 0.7, rng);
  MlpRegressor mlp;
  mlp.fit(split.train);
  EXPECT_GE(r2_score(split.test.targets, mlp.predict_all(split.test.x)), 0.9);
}

TEST(DecisionTree, ClassifiesPerfectlySeparableData) {
  Dataset d;
  for (int i = 0; i < 50; ++i) d.add_classification({static_cast<double>(i)}, i < 25 ? 0 : 1);
  DecisionTreeClassifier tree;
  tree.fit(d);
  EXPECT_EQ(tree.predict({3.0}), 0);
  EXPECT_EQ(tree.predict({40.0}), 1);
  EXPECT_GT(tree.node_count(), 1u);
}

TEST(DecisionTree, RegressionStepFunction) {
  Dataset d;
  for (int i = 0; i < 60; ++i)
    d.add_regression({static_cast<double>(i)}, i < 30 ? 1.0 : 5.0);
  DecisionTreeRegressor tree;
  tree.fit(d);
  EXPECT_NEAR(tree.predict({10.0}), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict({50.0}), 5.0, 1e-9);
}

TEST(DecisionTree, RespectsMaxDepth) {
  util::Rng rng(19);
  Dataset d;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 1);
    d.add_regression({x}, x + rng.normal(0, 0.01));
  }
  TreeOptions opt;
  opt.max_depth = 1;
  DecisionTreeRegressor stump(opt);
  stump.fit(d);
  EXPECT_LE(stump.node_count(), 3u);  // root + two leaves
}

TEST(RandomForest, BeatsChanceOnNoisyBlobs) {
  util::Rng rng(23);
  auto d = two_blob_classification(300, rng);
  auto split = split_dataset(d, 0.7, rng);
  RandomForestClassifier rf;
  rf.fit(split.train);
  EXPECT_GE(accuracy(split.test.labels, rf.predict_all(split.test.x)), 0.95);
  EXPECT_EQ(rf.tree_count(), 40u);
}

TEST(RandomForest, RegressionOnLinearData) {
  util::Rng rng(29);
  auto d = linear_regression_data(300, rng);
  auto split = split_dataset(d, 0.7, rng);
  RandomForestRegressor rf;
  rf.fit(split.train);
  EXPECT_GE(r2_score(split.test.targets, rf.predict_all(split.test.x)), 0.9);
}

TEST(Histogram, ExactPercentilesOnSmallSample) {
  HistogramModel h(0, 100, 10);
  for (double v : {10.0, 20.0, 30.0, 40.0}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 25.0);
  EXPECT_EQ(h.count(), 4u);
}

TEST(Histogram, BucketedPercentilesAfterOverflow) {
  HistogramModel h(0, 100, 100, /*max_exact=*/10);
  util::Rng rng(31);
  for (int i = 0; i < 10000; ++i) h.observe(rng.uniform(0, 100));
  EXPECT_NEAR(h.percentile(50), 50.0, 3.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 3.0);
}

TEST(Histogram, ClampsOutOfRangeObservations) {
  HistogramModel h(0, 10, 10);
  h.observe(-5);
  h.observe(50);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5);
  EXPECT_DOUBLE_EQ(h.max(), 50);
}

TEST(Histogram, EmptyThrows) {
  HistogramModel h(0, 10, 10);
  EXPECT_THROW(h.percentile(50), std::logic_error);
  EXPECT_THROW(h.mean(), std::logic_error);
}

// Property sweep: RF classification accuracy is robust across seeds.
class ForestSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForestSeedSweep, StableAccuracyAcrossSeeds) {
  util::Rng rng(GetParam());
  auto d = two_blob_classification(200, rng);
  auto split = split_dataset(d, 0.7, rng);
  ForestOptions opt;
  opt.seed = GetParam();
  RandomForestClassifier rf(opt);
  rf.fit(split.train);
  EXPECT_GE(accuracy(split.test.labels, rf.predict_all(split.test.x)), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestSeedSweep,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace libra::ml
