#include <gtest/gtest.h>

#include <sstream>

#include "util/table.h"

namespace libra::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, HeaderAfterRowsThrows) {
  Table t("demo");
  t.add_row({"x"});
  EXPECT_THROW(t.set_header({"a"}), std::logic_error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.392, 1), "39.2%");
}

TEST(Table, PrintWritesToStream) {
  Table t("demo");
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(Banner, ContainsText) {
  std::ostringstream os;
  print_banner(os, "hello");
  EXPECT_NE(os.str().find("hello"), std::string::npos);
}

}  // namespace
}  // namespace libra::util
