// libra-lint CLI. Typical use:
//
//   libra-lint -p build                 # lint every src/ TU in the compile DB
//   libra-lint --json findings.json -p build
//   libra-lint --checks bare-assert,unordered-iteration src/sim/engine.cpp
//
// Exit codes: 0 clean (all findings suppressed or none), 1 unsuppressed
// findings, 2 usage/environment error. The lexical backend is always
// available; --backend ast requires a build with LLVM/Clang dev packages
// (LIBRA_LINT_HAVE_CLANG) and falls back with an error otherwise.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace {

void usage() {
  std::cerr <<
      "usage: libra-lint [options] [files...]\n"
      "  -p <dir>            read <dir>/compile_commands.json\n"
      "  --compile-db <file> explicit compile_commands.json path\n"
      "  --src-root <dir>    recursively lint every .h/.cpp under <dir>\n"
      "  --json <file>       write the JSON findings artifact\n"
      "  --checks a,b,...    run only the named checks\n"
      "  --backend lexical|ast  analysis backend (default: ast when built\n"
      "                         with clang support, else lexical)\n"
      "  --list-checks       print check names and exit\n"
      "  -q                  suppress per-finding text output\n";
}

bool is_cpp_source(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// Recursively collects sources under `root`, sorted for determinism.
std::vector<std::string> collect_sources(const std::string& root) {
  std::vector<std::string> out;
  std::error_code ec;
  for (std::filesystem::recursive_directory_iterator it(root, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec) && is_cpp_source(it->path()))
      out.push_back(it->path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The compile DB only lists TUs; the lexical backend also needs the headers
/// (guarded-by members live there). Adds every header in the directories of
/// the DB's src/ files.
void add_sibling_headers(std::vector<std::string>* files) {
  std::set<std::string> dirs;
  for (const auto& f : *files) {
    if (libra::lint::in_src(libra::lint::rule_path_of(f)))
      dirs.insert(std::filesystem::path(f).parent_path().string());
  }
  std::set<std::string> seen(files->begin(), files->end());
  for (const auto& dir : dirs) {
    std::error_code ec;
    std::vector<std::string> headers;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      const std::string ext = it->path().extension().string();
      if (it->is_regular_file(ec) && (ext == ".h" || ext == ".hpp"))
        headers.push_back(it->path().string());
    }
    std::sort(headers.begin(), headers.end());
    for (const auto& h : headers)
      if (seen.insert(h).second) files->push_back(h);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace libra::lint;
  std::string db_path;
  std::string src_root;
  std::string json_path;
  std::string backend;
  bool quiet = false;
  LintOptions opt;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "libra-lint: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-p") {
      db_path = std::string(next()) + "/compile_commands.json";
    } else if (arg == "--compile-db") {
      db_path = next();
    } else if (arg == "--src-root") {
      src_root = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--backend") {
      backend = next();
    } else if (arg == "--checks") {
      const std::string list = next();
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string name =
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (!name.empty()) {
          Check c;
          if (!parse_check(name, &c)) {
            std::cerr << "libra-lint: unknown check '" << name << "'\n";
            return 2;
          }
          opt.checks.push_back(c);
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--list-checks") {
      for (Check c : all_checks()) std::cout << check_name(c) << "\n";
      return 0;
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (backend.empty()) {
#ifdef LIBRA_LINT_HAVE_CLANG
    backend = "ast";
#else
    backend = "lexical";
#endif
  }

  try {
    if (!db_path.empty()) {
      const auto db_files = compile_db_files(db_path);
      files.insert(files.end(), db_files.begin(), db_files.end());
      add_sibling_headers(&files);
    }
    if (!src_root.empty()) {
      const auto tree = collect_sources(src_root);
      files.insert(files.end(), tree.begin(), tree.end());
    }
    if (files.empty()) {
      std::cerr << "libra-lint: no input files (use -p <build-dir>, "
                   "--src-root <dir>, or list files)\n";
      return 2;
    }

    RunResult result;
    if (backend == "ast") {
#ifdef LIBRA_LINT_HAVE_CLANG
      std::string error;
      if (!run_ast_backend(db_path, files, opt, &result, &error)) {
        std::cerr << "libra-lint: ast backend failed: " << error << "\n";
        return 2;
      }
#else
      std::cerr << "libra-lint: built without clang support (LLVM dev "
                   "packages were absent at configure time); use --backend "
                   "lexical\n";
      return 2;
#endif
    } else if (backend == "lexical") {
      result = run_lexical(files, opt);
    } else {
      std::cerr << "libra-lint: unknown backend '" << backend << "'\n";
      return 2;
    }

    long suppressed = 0;
    for (const auto& f : result.findings) {
      if (f.suppressed) {
        ++suppressed;
        continue;
      }
      if (!quiet)
        std::cerr << f.file << ":" << f.line << ": [" << check_name(f.check)
                  << "] " << f.message << "\n";
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "libra-lint: cannot write " << json_path << "\n";
        return 2;
      }
      out << findings_to_json(result, backend);
    }
    std::cerr << "libra-lint (" << backend << "): " << result.files_scanned
              << " files, " << result.unsuppressed << " unsuppressed finding"
              << (result.unsuppressed == 1 ? "" : "s") << ", " << suppressed
              << " suppressed\n";
    return result.unsuppressed > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "libra-lint: " << e.what() << "\n";
    return 2;
  }
}
