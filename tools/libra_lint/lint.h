// libra-lint: repo-specific determinism & concurrency linter (see DESIGN.md
// §5i). Five checks encode the invariants the golden-digest replay tests and
// the conservation ledger rely on:
//
//   nondeterminism-source   no std::rand / std::random_device / wall clocks /
//                           getenv / pointer-value hashing in the sim core
//                           (src/sim|core|gen|workload); all randomness flows
//                           through util::Rng's forked seeded substreams.
//   unordered-iteration     no range-for / iterator walks over
//                           std::unordered_{map,set} anywhere in src/ without
//                           either a sorted snapshot or an explicit ALLOW —
//                           hash-order must never leak into digests, metrics
//                           or exports.
//   guarded-by-coverage     any class owning a util::Mutex must annotate every
//                           mutable data member with LIBRA_GUARDED_BY /
//                           LIBRA_PT_GUARDED_BY; raw std::mutex members are
//                           flagged (clang TSA cannot prove them).
//   bare-assert             assert( in src/ must be LIBRA_AUDIT_CHECK (live in
//                           all build types, reports engine context).
//   ledger-narrowing        no float, C-style numeric casts, or implicit
//                           double->integer narrowing in the harvest-pool /
//                           conservation-ledger arithmetic files.
//   flat-hot-path           no std::unordered_map / std::map data members in
//                           the designated hot-path files (engine,
//                           cluster_state, sharded_controller, harvest_pool):
//                           per-decision state lives in flat index-addressed
//                           vectors/slabs (DESIGN.md §5l); a map member needs
//                           a reasoned ALLOW.
//
// Suppressions: `// LIBRA_LINT_ALLOW(<check>): <reason>` on the finding line
// or the line directly above; `LIBRA_LINT_ALLOW_FILE(<check>): <reason>`
// anywhere in a file covers the whole file. The reason is mandatory — a
// missing reason or unknown check name is itself a finding (bad-suppression)
// and cannot be suppressed.
//
// Two backends share this interface: the always-available lexical backend
// (token-level, zero dependencies — what enforces the gate in environments
// without LLVM dev packages) and the clang AST-matcher backend
// (clang_backend.cpp, compiled only when find_package(Clang) succeeds).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace libra::lint {

enum class Check {
  kNondeterminismSource,
  kUnorderedIteration,
  kGuardedByCoverage,
  kBareAssert,
  kLedgerNarrowing,
  kFlatHotPath,
  kBadSuppression,  // meta-check: malformed LIBRA_LINT_ALLOW comments
};

/// Kebab-case name as used in ALLOW comments, --checks and JSON output.
const char* check_name(Check c);
/// Parses a kebab-case name; returns false for unknown names.
bool parse_check(const std::string& name, Check* out);
/// Every real check (excludes bad-suppression, which is always on).
std::vector<Check> all_checks();

struct Finding {
  Check check = Check::kBadSuppression;
  std::string file;  // rule-path (repo-relative, forward slashes)
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string suppression_reason;  // set when suppressed
};

struct LintOptions {
  /// Checks to run (bad-suppression always runs). Empty = all.
  std::vector<Check> checks;
};

/// One LIBRA_LINT_ALLOW comment, parsed.
struct Suppression {
  Check check = Check::kBadSuppression;
  int line = 0;       // line the comment starts on
  bool file_wide = false;
  std::string reason;
};

/// Scans comments for LIBRA_LINT_ALLOW / LIBRA_LINT_ALLOW_FILE. Malformed
/// ones (missing reason, unknown check) are reported into `errors`.
std::vector<Suppression> parse_suppressions(const std::string& content,
                                            std::vector<Finding>* errors,
                                            const std::string& rule_path);

/// Marks findings covered by a suppression (same check; same line or the
/// line directly below the comment, or file-wide). bad-suppression findings
/// are never suppressible.
void apply_suppressions(const std::vector<Suppression>& sups,
                        std::vector<Finding>* findings);

/// Cross-file symbol knowledge for unordered-iteration: which identifiers
/// name unordered containers, and which functions return them. Built from a
/// whole-repo pre-pass so `for (x : host_.invocations_map())` is caught in a
/// different file than the accessor's declaration.
struct SymbolIndex {
  /// Accessor/function names whose return type mentions an unordered
  /// container, visible repo-wide (accessors cross file boundaries).
  std::map<std::string, std::string> unordered_fns;  // name -> declaring file
  /// Variable/member names with unordered type, scoped per declaring file
  /// stem (e.g. "engine" covers engine.h + engine.cpp) so a vector named
  /// state_ in one class doesn't collide with an unordered map named state_
  /// in another.
  std::map<std::string, std::vector<std::string>> unordered_vars_by_stem;

  /// Names visible when analyzing `rule_path` (own stem + repo-wide fns).
  bool is_unordered_fn(const std::string& name) const;
  bool is_unordered_var(const std::string& stem, const std::string& name) const;
};

/// Feeds one file's declarations into the index. `rule_path` must be the
/// repo-relative path (its stem scopes variable names).
void index_file(const std::string& rule_path, const std::string& content,
                SymbolIndex* index);

/// Runs the lexical backend over one file's content. `rule_path` decides
/// which checks apply (directory rules above); suppressions are parsed and
/// applied. The index may be null (unordered-iteration then only sees
/// same-file declarations and `unordered_*` spelled inline).
std::vector<Finding> analyze_content(const std::string& rule_path,
                                     const std::string& content,
                                     const LintOptions& opt,
                                     const SymbolIndex* index);

// ---- path rules ----

/// Repo-relative rule path: the substring starting at the last "src/" (or
/// "tests/", "bench/", "tools/", "examples/") component; the path unchanged
/// when already relative.
std::string rule_path_of(const std::string& path);
/// nondeterminism-source scope: src/sim|core|gen|workload (bench/exp timing
/// code is allowlisted by exclusion).
bool in_sim_core(const std::string& rule_path);
/// ledger-narrowing scope: harvest-pool / conservation-ledger arithmetic.
bool in_ledger_files(const std::string& rule_path);
/// flat-hot-path scope: the per-decision hot-path files refactored to flat
/// index-addressed storage in §5l.
bool in_hot_path_files(const std::string& rule_path);
/// All other checks: anything under src/.
bool in_src(const std::string& rule_path);

// ---- driver helpers (file IO; used by main and the repo self-lint test) ----

/// Parses compile_commands.json and returns the distinct "file" entries
/// (absolute paths, deduplicated, sorted). Minimal JSON subset parser; throws
/// std::runtime_error on unreadable input.
std::vector<std::string> compile_db_files(const std::string& db_path);

struct RunResult {
  std::vector<Finding> findings;  // suppressed ones included, flag set
  int files_scanned = 0;
  long unsuppressed = 0;
};

/// Lexical backend over a file list: builds the SymbolIndex pre-pass, then
/// analyzes each file. Files whose rule path is outside src/ are skipped
/// (bench/tests/examples are not lint targets).
RunResult run_lexical(const std::vector<std::string>& files,
                      const LintOptions& opt);

/// Serializes findings as the JSON artifact CI uploads.
std::string findings_to_json(const RunResult& result,
                             const std::string& backend);

#ifdef LIBRA_LINT_HAVE_CLANG
/// AST-matcher backend (clang_backend.cpp): precise type-based matching over
/// the compile DB. Returns false (with `error` set) when the tool failed to
/// run; findings land in `result` with suppressions already applied.
bool run_ast_backend(const std::string& db_path,
                     const std::vector<std::string>& files,
                     const LintOptions& opt, RunResult* result,
                     std::string* error);
#endif

}  // namespace libra::lint
