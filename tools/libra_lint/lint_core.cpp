// Backend-agnostic pieces of libra-lint: check registry, suppression
// parsing/application, path rules, compile_commands.json file extraction,
// and the JSON findings artifact.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "lint.h"

namespace libra::lint {

namespace {

struct CheckNameRow {
  Check check;
  const char* name;
};

constexpr CheckNameRow kCheckNames[] = {
    {Check::kNondeterminismSource, "nondeterminism-source"},
    {Check::kUnorderedIteration, "unordered-iteration"},
    {Check::kGuardedByCoverage, "guarded-by-coverage"},
    {Check::kBareAssert, "bare-assert"},
    {Check::kLedgerNarrowing, "ledger-narrowing"},
    {Check::kFlatHotPath, "flat-hot-path"},
    {Check::kBadSuppression, "bad-suppression"},
};

std::string trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

const char* check_name(Check c) {
  for (const auto& row : kCheckNames)
    if (row.check == c) return row.name;
  return "unknown";
}

bool parse_check(const std::string& name, Check* out) {
  for (const auto& row : kCheckNames)
    if (name == row.name) {
      *out = row.check;
      return true;
    }
  return false;
}

std::vector<Check> all_checks() {
  return {Check::kNondeterminismSource, Check::kUnorderedIteration,
          Check::kGuardedByCoverage, Check::kBareAssert,
          Check::kLedgerNarrowing, Check::kFlatHotPath};
}

// ---- suppressions ----

std::vector<Suppression> parse_suppressions(const std::string& content,
                                            std::vector<Finding>* errors,
                                            const std::string& rule_path) {
  std::vector<Suppression> out;
  // Scan raw content (not the token stream): ALLOW markers live in comments.
  static const std::string kMarker = "LIBRA_LINT_ALLOW";
  size_t pos = 0;
  int line = 1;
  size_t line_start = 0;
  while (true) {
    const size_t hit = content.find(kMarker, pos);
    if (hit == std::string::npos) break;
    for (size_t i = line_start; i < hit; ++i)
      if (content[i] == '\n') ++line;
    line_start = hit;
    pos = hit + kMarker.size();

    // Skip the definition of the marker itself (string literals / docs that
    // merely mention it without a '(' directly after the name).
    bool file_wide = false;
    size_t p = pos;
    if (content.compare(p, 5, "_FILE") == 0) {
      file_wide = true;
      p += 5;
    }
    if (p >= content.size() || content[p] != '(') continue;
    const size_t close = content.find(')', p);
    if (close == std::string::npos) continue;
    const std::string name = trim(content.substr(p + 1, close - p - 1));
    Suppression sup;
    sup.line = line;
    sup.file_wide = file_wide;
    if (!parse_check(name, &sup.check) || sup.check == Check::kBadSuppression) {
      errors->push_back({Check::kBadSuppression, rule_path, line,
                         "LIBRA_LINT_ALLOW names unknown check '" + name + "'",
                         false,
                         {}});
      continue;
    }
    // Mandatory ": <reason>" after the closing paren.
    size_t r = close + 1;
    while (r < content.size() && (content[r] == ' ' || content[r] == '\t')) ++r;
    if (r >= content.size() || content[r] != ':') {
      errors->push_back({Check::kBadSuppression, rule_path, line,
                         std::string("LIBRA_LINT_ALLOW(") + name +
                             ") is missing the mandatory ': <reason>'",
                         false,
                         {}});
      continue;
    }
    const size_t eol = content.find('\n', r);
    const std::string reason = trim(content.substr(
        r + 1, (eol == std::string::npos ? content.size() : eol) - r - 1));
    if (reason.empty()) {
      errors->push_back({Check::kBadSuppression, rule_path, line,
                         std::string("LIBRA_LINT_ALLOW(") + name +
                             ") has an empty reason",
                         false,
                         {}});
      continue;
    }
    sup.reason = reason;
    out.push_back(sup);
  }
  return out;
}

void apply_suppressions(const std::vector<Suppression>& sups,
                        std::vector<Finding>* findings) {
  for (Finding& f : *findings) {
    if (f.check == Check::kBadSuppression) continue;  // never suppressible
    for (const Suppression& s : sups) {
      if (s.check != f.check) continue;
      if (s.file_wide || f.line == s.line || f.line == s.line + 1) {
        f.suppressed = true;
        f.suppression_reason = s.reason;
        break;
      }
    }
  }
}

// ---- path rules ----

std::string rule_path_of(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  static const char* kRoots[] = {"src/", "tests/", "bench/", "tools/",
                                 "examples/"};
  size_t best = std::string::npos;
  for (const char* root : kRoots) {
    // Last occurrence preceded by start-of-string or '/'.
    size_t at = p.rfind(root);
    while (at != std::string::npos && at != 0 && p[at - 1] != '/')
      at = (at == 0) ? std::string::npos : p.rfind(root, at - 1);
    if (at != std::string::npos && (best == std::string::npos || at < best))
      best = at;
  }
  return best == std::string::npos ? p : p.substr(best);
}

bool in_src(const std::string& rule_path) {
  return rule_path.rfind("src/", 0) == 0;
}

bool in_sim_core(const std::string& rule_path) {
  return rule_path.rfind("src/sim/", 0) == 0 ||
         rule_path.rfind("src/core/", 0) == 0 ||
         rule_path.rfind("src/gen/", 0) == 0 ||
         rule_path.rfind("src/workload/", 0) == 0;
}

bool in_ledger_files(const std::string& rule_path) {
  return rule_path.find("harvest_pool") != std::string::npos ||
         rule_path.find("pool_status") != std::string::npos ||
         rule_path.find("pool_event") != std::string::npos ||
         rule_path.find("invariant_auditor") != std::string::npos;
}

bool in_hot_path_files(const std::string& rule_path) {
  // "engine." (with the dot) keeps engine_config / engine_host.h out of the
  // engine stem; the host seam is listed explicitly — its store type IS the
  // hot-path contract.
  return rule_path.rfind("src/sim/engine.", 0) == 0 ||
         rule_path == "src/sim/engine_host.h" ||
         rule_path.rfind("src/sim/cluster_state", 0) == 0 ||
         rule_path.rfind("src/sim/sharded_controller", 0) == 0 ||
         rule_path.rfind("src/core/harvest_pool", 0) == 0;
}

// ---- compile_commands.json ----

namespace {

std::string json_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'u': i += 4; out += '?'; break;  // non-ASCII paths unsupported
      default: out += s[i];
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> compile_db_files(const std::string& db_path) {
  std::ifstream in(db_path);
  if (!in) throw std::runtime_error("cannot open " + db_path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::set<std::string> files;
  static const std::string kKey = "\"file\"";
  size_t pos = 0;
  while (true) {
    size_t hit = text.find(kKey, pos);
    if (hit == std::string::npos) break;
    pos = hit + kKey.size();
    size_t colon = text.find(':', pos);
    if (colon == std::string::npos) break;
    size_t open = text.find('"', colon);
    if (open == std::string::npos) break;
    size_t close = open + 1;
    while (close < text.size() &&
           !(text[close] == '"' && text[close - 1] != '\\'))
      ++close;
    if (close >= text.size()) break;
    files.insert(json_unescape(text.substr(open + 1, close - open - 1)));
    pos = close + 1;
  }
  return {files.begin(), files.end()};
}

// ---- lexical driver ----

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

RunResult run_lexical(const std::vector<std::string>& files,
                      const LintOptions& opt) {
  RunResult result;
  SymbolIndex index;
  std::vector<std::pair<std::string, std::string>> loaded;  // rule_path, text
  for (const std::string& path : files) {
    const std::string rp = rule_path_of(path);
    if (!in_src(rp)) continue;  // bench/tests/examples are not lint targets
    loaded.emplace_back(rp, read_file(path));
  }
  // Deterministic order regardless of input order.
  std::sort(loaded.begin(), loaded.end());
  loaded.erase(std::unique(loaded.begin(), loaded.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               loaded.end());
  for (const auto& [rp, text] : loaded) index_file(rp, text, &index);
  for (const auto& [rp, text] : loaded) {
    auto fs = analyze_content(rp, text, opt, &index);
    result.findings.insert(result.findings.end(), fs.begin(), fs.end());
    ++result.files_scanned;
  }
  for (const Finding& f : result.findings)
    if (!f.suppressed) ++result.unsuppressed;
  return result;
}

// ---- JSON artifact ----

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string findings_to_json(const RunResult& result,
                             const std::string& backend) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"libra-lint\",\n  \"version\": 1,\n  \"backend\": \""
     << json_escape(backend) << "\",\n  \"files_scanned\": "
     << result.files_scanned
     << ",\n  \"unsuppressed\": " << result.unsuppressed
     << ",\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : result.findings) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"check\": \"" << check_name(f.check) << "\", \"file\": \""
       << json_escape(f.file) << "\", \"line\": " << f.line
       << ", \"suppressed\": " << (f.suppressed ? "true" : "false")
       << ", \"message\": \"" << json_escape(f.message) << "\"";
    if (f.suppressed)
      os << ", \"reason\": \"" << json_escape(f.suppression_reason) << "\"";
    os << "}";
  }
  os << (first ? "]\n}\n" : "\n  ]\n}\n");
  return os.str();
}

}  // namespace libra::lint
