// AST-matcher backend: the precise half of libra-lint, compiled only when
// find_package(Clang) succeeds (LIBRA_LINT_HAVE_CLANG). It parses every src/
// TU from the compile DB with LibTooling and matches on canonical types, so
// it sees through typedefs, auto, references and member accessors that the
// lexical backend can only approximate by name:
//
//   nondeterminism-source   calls to banned libc/std functions, any
//                           ::now() on system/steady clocks (including via
//                           the high_resolution_clock alias), std::random_
//                           device uses, std::hash<T*> specializations.
//   unordered-iteration     range-for or .begin()/.cbegin() where the
//                           operand's CANONICAL type is an unordered
//                           container — catches `auto& m = host.map();`.
//   guarded-by-coverage     FieldDecl attribute walk: classes owning a
//                           util::Mutex must carry clang's GuardedByAttr /
//                           PtGuardedByAttr on every non-exempt field (the
//                           LIBRA_GUARDED_BY macros expand to the real
//                           attributes under clang, so the check reads the
//                           AST, not the spelling); raw std::mutex fields
//                           are flagged.
//   ledger-narrowing        `float` declarations, C-style arithmetic casts,
//                           and implicit CK_FloatingToIntegral conversions
//                           in the ledger files.
//   bare-assert             delegated to the shared lexical pass — assert is
//                           a macro and leaves no distinct AST node, and the
//                           token scan is already exact.
//   flat-hot-path           delegated to the shared lexical pass — the
//                           designated file list and the member-declaration
//                           grammar are what the check is about; spelled-out
//                           map members need no type resolution.
//
// Findings are deduplicated by (file, line, check) across TUs (headers are
// parsed once per includer), filtered by the same rule-path scoping as the
// lexical backend, and run through the same LIBRA_LINT_ALLOW suppression
// grammar, so both backends agree on what "clean" means.
#ifdef LIBRA_LINT_HAVE_CLANG

#include <algorithm>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "clang/AST/Attr.h"
#include "clang/AST/DeclCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/ArgumentsAdjusters.h"
#include "clang/Tooling/JSONCompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

#include "lint.h"

namespace libra::lint {
namespace {

using clang::ast_matchers::MatchFinder;
namespace am = clang::ast_matchers;

bool mentions(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string canonical_type_str(clang::QualType t) {
  if (t.isNull()) return {};
  return t.getNonReferenceType().getCanonicalType().getUnqualifiedType()
      .getAsString();
}

bool is_unordered_container(const std::string& type_str) {
  return mentions(type_str, "unordered_map<") ||
         mentions(type_str, "unordered_multimap<") ||
         mentions(type_str, "unordered_set<") ||
         mentions(type_str, "unordered_multiset<");
}

/// Collects raw findings from the match callbacks: resolves locations to
/// rule paths, applies per-check path scoping, drops system headers, and
/// dedupes across TUs (every includer re-parses the same header).
class Sink {
 public:
  explicit Sink(const LintOptions& opt) {
    if (opt.checks.empty()) {
      for (Check c : all_checks()) enabled_.insert(static_cast<int>(c));
    } else {
      for (Check c : opt.checks) enabled_.insert(static_cast<int>(c));
    }
  }

  bool enabled(Check c) const {
    return enabled_.count(static_cast<int>(c)) != 0;
  }

  void add(Check check, clang::SourceLocation loc,
           const clang::SourceManager& sm, std::string message) {
    if (!enabled(check) || loc.isInvalid()) return;
    // Expansion loc: a finding inside a macro points at the use site, where
    // the ALLOW comment (if any) lives.
    const clang::SourceLocation at = sm.getExpansionLoc(loc);
    if (sm.isInSystemHeader(at)) return;
    const clang::PresumedLoc p = sm.getPresumedLoc(at);
    if (p.isInvalid() || p.getFilename() == nullptr) return;
    const std::string abs_path = p.getFilename();
    const std::string rp = rule_path_of(abs_path);
    if (!in_src(rp)) return;
    if (check == Check::kNondeterminismSource && !in_sim_core(rp)) return;
    if (check == Check::kLedgerNarrowing && !in_ledger_files(rp)) return;
    const int line = static_cast<int>(p.getLine());
    if (!seen_.insert({rp, line, static_cast<int>(check)}).second) return;
    Finding f;
    f.check = check;
    f.file = rp;
    f.line = line;
    f.message = std::move(message);
    findings_.push_back(std::move(f));
    paths_[rp] = abs_path;
  }

  std::vector<Finding>& findings() { return findings_; }
  const std::map<std::string, std::string>& paths() const { return paths_; }

 private:
  std::set<int> enabled_;
  std::set<std::tuple<std::string, int, int>> seen_;
  std::vector<Finding> findings_;
  std::map<std::string, std::string> paths_;  // rule path -> absolute path
};

/// MatchFinder callback adapter over a plain function object.
class Callback : public MatchFinder::MatchCallback {
 public:
  using Fn = std::function<void(const MatchFinder::MatchResult&)>;
  explicit Callback(Fn fn) : fn_(std::move(fn)) {}
  void run(const MatchFinder::MatchResult& result) override { fn_(result); }

 private:
  Fn fn_;
};

/// Owns the callbacks (MatchFinder keeps raw pointers) and registers every
/// matcher once; shared across all TUs so the Sink dedupe spans the run.
class Matchers {
 public:
  Matchers(Sink* sink, MatchFinder* finder) : sink_(sink) {
    // ---- nondeterminism-source ----
    add(finder,
        am::callExpr(
            am::callee(am::functionDecl(am::hasAnyName(
                "::rand", "::std::rand", "::srand", "::std::srand",
                "::getenv", "::std::getenv", "::secure_getenv",
                "::gettimeofday", "::clock_gettime", "::time", "::std::time",
                "::localtime", "::std::localtime", "::gmtime",
                "::std::gmtime"))))
            .bind("x"),
        [this](const MatchFinder::MatchResult& r) {
          const auto* e = r.Nodes.getNodeAs<clang::CallExpr>("x");
          std::string name = "<banned function>";
          if (const auto* fd = e->getDirectCallee())
            name = fd->getQualifiedNameAsString();
          sink_->add(Check::kNondeterminismSource, e->getBeginLoc(),
                     *r.SourceManager,
                     "call to " + name +
                         " in the sim core; all randomness/time must flow "
                         "through util::Rng substreams and the event clock");
        });
    add(finder,
        am::callExpr(am::callee(am::cxxMethodDecl(
                         am::hasName("now"),
                         am::ofClass(am::hasAnyName(
                             "::std::chrono::system_clock",
                             "::std::chrono::steady_clock")))))
            .bind("x"),
        [this](const MatchFinder::MatchResult& r) {
          const auto* e = r.Nodes.getNodeAs<clang::CallExpr>("x");
          sink_->add(Check::kNondeterminismSource, e->getBeginLoc(),
                     *r.SourceManager,
                     "wall-clock now() in the sim core; sim time comes from "
                     "the event queue, never the host clock");
        });
    const auto random_device =
        am::cxxRecordDecl(am::hasName("::std::random_device"));
    add(finder, am::varDecl(am::hasType(random_device)).bind("x"),
        [this](const MatchFinder::MatchResult& r) {
          const auto* d = r.Nodes.getNodeAs<clang::VarDecl>("x");
          sink_->add(Check::kNondeterminismSource, d->getLocation(),
                     *r.SourceManager,
                     "std::random_device in the sim core; seeds come from "
                     "the run config via util::Rng");
        });
    add(finder,
        am::cxxTemporaryObjectExpr(am::hasType(random_device)).bind("x"),
        [this](const MatchFinder::MatchResult& r) {
          const auto* e = r.Nodes.getNodeAs<clang::Expr>("x");
          sink_->add(Check::kNondeterminismSource, e->getBeginLoc(),
                     *r.SourceManager,
                     "std::random_device in the sim core; seeds come from "
                     "the run config via util::Rng");
        });
    const auto pointer_hash = am::classTemplateSpecializationDecl(
        am::hasName("::std::hash"),
        am::hasTemplateArgument(0, am::refersToType(am::pointerType())));
    add(finder, am::varDecl(am::hasType(pointer_hash)).bind("x"),
        [this](const MatchFinder::MatchResult& r) {
          const auto* d = r.Nodes.getNodeAs<clang::VarDecl>("x");
          sink_->add(Check::kNondeterminismSource, d->getLocation(),
                     *r.SourceManager,
                     "std::hash over a pointer value; addresses vary per run "
                     "and must never order or key anything");
        });

    // ---- unordered-iteration ----
    add(finder, am::cxxForRangeStmt().bind("x"),
        [this](const MatchFinder::MatchResult& r) {
          const auto* s = r.Nodes.getNodeAs<clang::CXXForRangeStmt>("x");
          const auto* init = s->getRangeInit();
          if (!init) return;
          const std::string t = canonical_type_str(init->getType());
          if (!is_unordered_container(t)) return;
          sink_->add(Check::kUnorderedIteration, s->getBeginLoc(),
                     *r.SourceManager,
                     "range-for over " + t +
                         "; hash order must not leak — snapshot and sort, "
                         "or ALLOW with a reason");
        });
    add(finder,
        am::cxxMemberCallExpr(am::callee(am::cxxMethodDecl(
                                  am::hasAnyName("begin", "cbegin"))))
            .bind("x"),
        [this](const MatchFinder::MatchResult& r) {
          const auto* e = r.Nodes.getNodeAs<clang::CXXMemberCallExpr>("x");
          const auto* obj = e->getImplicitObjectArgument();
          if (!obj) return;
          const std::string t = canonical_type_str(obj->getType());
          if (!is_unordered_container(t)) return;
          sink_->add(Check::kUnorderedIteration, e->getBeginLoc(),
                     *r.SourceManager,
                     "iterator walk over " + t +
                         "; hash order must not leak — snapshot and sort, "
                         "or ALLOW with a reason");
        });

    // ---- guarded-by-coverage ----
    add(finder,
        am::cxxRecordDecl(am::isDefinition(),
                          am::unless(am::isExpansionInSystemHeader()))
            .bind("x"),
        [this](const MatchFinder::MatchResult& r) {
          check_record(r.Nodes.getNodeAs<clang::CXXRecordDecl>("x"),
                       *r.SourceManager);
        });

    // ---- ledger-narrowing ----
    add(finder, am::declaratorDecl(am::hasType(am::asString("float")))
                    .bind("x"),
        [this](const MatchFinder::MatchResult& r) {
          const auto* d = r.Nodes.getNodeAs<clang::DeclaratorDecl>("x");
          sink_->add(Check::kLedgerNarrowing, d->getLocation(),
                     *r.SourceManager,
                     "float in ledger arithmetic; the conservation audits "
                     "assume double precision throughout");
        });
    add(finder, am::cStyleCastExpr().bind("x"),
        [this](const MatchFinder::MatchResult& r) {
          const auto* e = r.Nodes.getNodeAs<clang::CStyleCastExpr>("x");
          const clang::QualType to = e->getTypeAsWritten();
          if (to.isNull() || !to->isArithmeticType()) return;
          sink_->add(Check::kLedgerNarrowing, e->getBeginLoc(),
                     *r.SourceManager,
                     "C-style numeric cast in ledger arithmetic; use "
                     "static_cast so conversions are searchable and "
                     "intentional");
        });
    add(finder,
        am::implicitCastExpr(
            am::hasCastKind(clang::CK_FloatingToIntegral))
            .bind("x"),
        [this](const MatchFinder::MatchResult& r) {
          const auto* e = r.Nodes.getNodeAs<clang::ImplicitCastExpr>("x");
          sink_->add(Check::kLedgerNarrowing, e->getBeginLoc(),
                     *r.SourceManager,
                     "implicit floating->integer narrowing in ledger "
                     "arithmetic; make the rounding explicit (static_cast "
                     "after std::lround/floor/ceil)");
        });
  }

 private:
  void add(MatchFinder* finder, const am::StatementMatcher& m,
           Callback::Fn fn) {
    callbacks_.push_back(std::make_unique<Callback>(std::move(fn)));
    finder->addMatcher(m, callbacks_.back().get());
  }
  void add(MatchFinder* finder, const am::DeclarationMatcher& m,
           Callback::Fn fn) {
    callbacks_.push_back(std::make_unique<Callback>(std::move(fn)));
    finder->addMatcher(m, callbacks_.back().get());
  }

  /// guarded-by-coverage over one class definition: mirrors the lexical
  /// backend's member classification, but reads the real clang attributes.
  void check_record(const clang::CXXRecordDecl* rec,
                    const clang::SourceManager& sm) {
    if (!rec || !rec->isCompleteDefinition()) return;
    bool owns_util_mutex = false;
    for (const clang::FieldDecl* f : rec->fields()) {
      if (mentions(canonical_type_str(f->getType()), "libra::util::Mutex"))
        owns_util_mutex = true;
    }
    for (const clang::FieldDecl* f : rec->fields()) {
      const std::string t = canonical_type_str(f->getType());
      if (mentions(t, "std::mutex") && !mentions(t, "std::mutex>")) {
        sink_->add(Check::kGuardedByCoverage, f->getLocation(), sm,
                   "raw std::mutex member '" + f->getNameAsString() +
                       "'; use util::Mutex so clang thread-safety analysis "
                       "can prove the lock discipline");
        continue;
      }
      if (!owns_util_mutex) continue;
      if (f->hasAttr<clang::GuardedByAttr>() ||
          f->hasAttr<clang::PtGuardedByAttr>())
        continue;
      if (mentions(t, "libra::util::Mutex")) continue;  // the lock itself
      const clang::QualType qt = f->getType();
      if (qt.isConstQualified() || qt->isReferenceType()) continue;
      if (mentions(t, "std::atomic<") || mentions(t, "atomic_"))
        continue;
      if (mentions(t, "std::condition_variable")) continue;
      sink_->add(Check::kGuardedByCoverage, f->getLocation(), sm,
                 "member '" + f->getNameAsString() + "' of mutex-owning " +
                     rec->getNameAsString() +
                     " lacks LIBRA_GUARDED_BY (const/atomic/reference "
                     "members are exempt)");
    }
  }

  Sink* sink_;
  std::vector<std::unique_ptr<Callback>> callbacks_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

bool run_ast_backend(const std::string& db_path,
                     const std::vector<std::string>& files,
                     const LintOptions& opt, RunResult* result,
                     std::string* error) {
  if (db_path.empty()) {
    *error = "the ast backend needs a compile DB (-p or --compile-db)";
    return false;
  }
  std::string load_err;
  const auto db = clang::tooling::JSONCompilationDatabase::loadFromFile(
      db_path, load_err,
      clang::tooling::JSONCommandLineSyntax::AutoDetect);
  if (!db) {
    *error = "cannot load " + db_path + ": " + load_err;
    return false;
  }

  std::vector<std::string> tus;
  for (const auto& f : db->getAllFiles())
    if (in_src(rule_path_of(f))) tus.push_back(f);
  std::sort(tus.begin(), tus.end());
  tus.erase(std::unique(tus.begin(), tus.end()), tus.end());
  if (tus.empty()) {
    *error = "no src/ translation units in " + db_path;
    return false;
  }

  clang::tooling::ClangTool tool(*db, tus);
  // The checks are ours; compiler diagnostics only add noise (and the DB's
  // warning flags may not all exist on the linked clang).
  tool.appendArgumentsAdjuster(
      clang::tooling::getInsertArgumentAdjuster("-w"));
  tool.appendArgumentsAdjuster(
      clang::tooling::getInsertArgumentAdjuster("-Wno-everything"));
#ifdef LIBRA_LINT_CLANG_RESOURCE_DIR
  // libra-lint is not installed next to clang's builtin headers, so point
  // the parser at the resource dir the build found (stddef.h etc.).
  tool.appendArgumentsAdjuster(clang::tooling::getInsertArgumentAdjuster(
      "-resource-dir=" LIBRA_LINT_CLANG_RESOURCE_DIR));
#endif

  Sink sink(opt);
  MatchFinder finder;
  Matchers matchers(&sink, &finder);
  const int status =
      tool.run(clang::tooling::newFrontendActionFactory(&finder).get());
  if (status != 0) {
    *error = "clang failed to parse the compile DB's TUs (status " +
             std::to_string(status) +
             "); fix the build first — the AST checks need parseable code";
    return false;
  }

  // Every src/ input file gets a suppression/bare-assert pass, plus any
  // file an AST finding landed in (headers pulled in via #include).
  std::map<std::string, std::string> paths;  // rule path -> absolute
  for (const auto& f : files) {
    const std::string rp = rule_path_of(f);
    if (in_src(rp)) paths.emplace(rp, f);
  }
  for (const auto& [rp, abs] : sink.paths()) paths.emplace(rp, abs);

  std::map<std::string, std::vector<Finding>> by_file;
  for (auto& f : sink.findings()) by_file[f.file].push_back(std::move(f));

  std::vector<Finding> all;
  for (const auto& [rp, abs] : paths) {
    const std::string content = read_file(abs);
    auto& findings = by_file[rp];
    std::vector<Finding> bad;
    const auto sups = parse_suppressions(content, &bad, rp);
    apply_suppressions(sups, &findings);
    for (auto& f : findings) all.push_back(std::move(f));
    for (auto& f : bad) all.push_back(std::move(f));
    if (sink.enabled(Check::kBareAssert)) {
      // assert is a macro — no distinct AST node survives expansion; the
      // token-level check is exact, so both backends share it. Its output
      // repeats the bad-suppression findings parsed above; the dedupe
      // below drops the copies.
      LintOptions bare;
      bare.checks.push_back(Check::kBareAssert);
      for (auto& f : analyze_content(rp, content, bare, nullptr))
        all.push_back(std::move(f));
    }
    if (sink.enabled(Check::kFlatHotPath)) {
      // Same sharing rationale: the lexical member-declaration scan is the
      // check's definition, so both backends run it verbatim.
      LintOptions flat;
      flat.checks.push_back(Check::kFlatHotPath);
      for (auto& f : analyze_content(rp, content, flat, nullptr))
        all.push_back(std::move(f));
    }
  }

  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line) < std::tie(b.file, b.line) ||
           (a.file == b.file && a.line == b.line &&
            std::string(check_name(a.check)) < check_name(b.check));
  });
  all.erase(std::unique(all.begin(), all.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.check == b.check;
                        }),
            all.end());

  result->findings = std::move(all);
  result->files_scanned = static_cast<int>(paths.size());
  result->unsuppressed = 0;
  for (const auto& f : result->findings)
    if (!f.suppressed) ++result->unsuppressed;
  return true;
}

}  // namespace libra::lint

#endif  // LIBRA_LINT_HAVE_CLANG
