// The five lexical checks. Token-level analysis is deliberately conservative:
// it understands declarations, template argument lists, class bodies and
// range-for statements well enough to enforce the repo idioms, and anything
// it cannot prove order-insensitive must carry an explicit, reasoned
// LIBRA_LINT_ALLOW. The clang AST backend (clang_backend.cpp) runs the same
// checks with real type information when LLVM dev packages are present.
#include <algorithm>
#include <set>

#include "lexer.h"
#include "lint.h"

namespace libra::lint {

namespace {

using Tokens = std::vector<Token>;

bool is_ident(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

bool enabled(const LintOptions& opt, Check c) {
  return opt.checks.empty() ||
         std::find(opt.checks.begin(), opt.checks.end(), c) !=
             opt.checks.end();
}

/// File stem for per-file variable scoping: "src/sim/engine.h" -> "engine".
std::string stem_of(const std::string& rule_path) {
  const size_t slash = rule_path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? rule_path : rule_path.substr(slash + 1);
  const size_t dot = base.find('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

const std::set<std::string>& unordered_type_names() {
  static const std::set<std::string> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kNames;
}

/// Advances past a balanced <...> starting at tokens[i] == "<". Returns the
/// index one past the closing ">", or `i` unchanged if unbalanced within
/// `limit` tokens (gives up on expression-context '<').
size_t skip_angles(const Tokens& toks, size_t i, size_t limit = 256) {
  if (i >= toks.size() || toks[i].text != "<") return i;
  int depth = 0;
  size_t steps = 0;
  for (size_t j = i; j < toks.size() && steps < limit; ++j, ++steps) {
    if (toks[j].text == "<") ++depth;
    else if (toks[j].text == ">") {
      if (--depth == 0) return j + 1;
    } else if (toks[j].text == ";") {
      break;  // statements never span a template argument list
    }
  }
  return i;
}

/// Advances past a balanced (...) starting at tokens[i] == "(".
size_t skip_parens(const Tokens& toks, size_t i) {
  if (i >= toks.size() || toks[i].text != "(") return i;
  int depth = 0;
  for (size_t j = i; j < toks.size(); ++j) {
    if (toks[j].text == "(") ++depth;
    else if (toks[j].text == ")" && --depth == 0) return j + 1;
  }
  return toks.size();
}

/// Advances past a balanced {...} starting at tokens[i] == "{".
size_t skip_braces(const Tokens& toks, size_t i) {
  if (i >= toks.size() || toks[i].text != "{") return i;
  int depth = 0;
  for (size_t j = i; j < toks.size(); ++j) {
    if (toks[j].text == "{") ++depth;
    else if (toks[j].text == "}" && --depth == 0) return j + 1;
  }
  return toks.size();
}

// ---- check 1: nondeterminism-source ----

void check_nondeterminism(const std::string& rule_path, const Tokens& toks,
                          std::vector<Finding>* out) {
  static const std::set<std::string> kBannedCalls = {
      "rand", "srand", "getenv", "secure_getenv", "gettimeofday",
      "clock_gettime", "localtime", "gmtime"};
  static const std::set<std::string> kClocks = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool called = i + 1 < toks.size() && toks[i + 1].text == "(";
    const bool qualified = i > 0 && toks[i - 1].text == "::";
    const bool member = i > 0 && (toks[i - 1].text == "." ||
                                  toks[i - 1].text == "->");
    if (kBannedCalls.count(t.text) && (called || qualified) && !member) {
      out->push_back({Check::kNondeterminismSource, rule_path, t.line,
                      "'" + t.text +
                          "' in the sim core: all randomness must flow "
                          "through util::Rng seeded substreams and all time "
                          "through the sim clock",
                      false,
                      {}});
      continue;
    }
    if (t.text == "random_device" && !member) {
      out->push_back({Check::kNondeterminismSource, rule_path, t.line,
                      "std::random_device in the sim core: use util::Rng "
                      "forked from the run seed",
                      false,
                      {}});
      continue;
    }
    if (kClocks.count(t.text) && !member) {
      out->push_back({Check::kNondeterminismSource, rule_path, t.line,
                      "wall clock '" + t.text +
                          "' in the sim core: sim time comes from the event "
                          "queue; real timing belongs in bench/ or needs an "
                          "ALLOW",
                      false,
                      {}});
      continue;
    }
    // std::hash<T*>: pointer values are run-dependent; hashing them leaks
    // ASLR into bucket orders.
    if (t.text == "hash" && i + 1 < toks.size() && toks[i + 1].text == "<") {
      const size_t end = skip_angles(toks, i + 1);
      for (size_t j = i + 1; j < end; ++j)
        if (toks[j].text == "*") {
          out->push_back({Check::kNondeterminismSource, rule_path, t.line,
                          "std::hash over a pointer type: pointer values are "
                          "nondeterministic across runs",
                          false,
                          {}});
          break;
        }
    }
  }
}

// ---- check 2: unordered-iteration ----

void index_unordered(const std::string& rule_path, const Tokens& toks,
                     SymbolIndex* index) {
  const std::string stem = stem_of(rule_path);
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        !unordered_type_names().count(toks[i].text))
      continue;
    size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    const size_t after = skip_angles(toks, j);
    if (after == j) continue;  // unbalanced; not a type use
    j = after;
    // Skip cv/ref/pointer decorations between the type and the name.
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            is_ident(toks[j], "const")))
      ++j;
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    const std::string name = toks[j].text;
    const std::string next = j + 1 < toks.size() ? toks[j + 1].text : "";
    if (next == "(")
      index->unordered_fns[name] = rule_path;
    else if (next == ";" || next == "=" || next == "{" || next == ",")
      index->unordered_vars_by_stem[stem].push_back(name);
  }
}

void check_unordered_iteration(const std::string& rule_path,
                               const Tokens& toks, const SymbolIndex* index,
                               std::vector<Finding>* out) {
  const std::string stem = stem_of(rule_path);
  auto is_unordered_name = [&](size_t i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) return false;
    if (t.text.rfind("unordered_", 0) == 0) return true;
    if (index == nullptr) return false;
    const bool called = i + 1 < toks.size() && toks[i + 1].text == "(";
    if (called) return index->is_unordered_fn(t.text);
    return index->is_unordered_var(stem, t.text);
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    // Range-for over an unordered container.
    if (is_ident(toks[i], "for") && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      const size_t close = skip_parens(toks, i + 1);
      // Find the top-level ':' separating declaration from range.
      size_t colon = 0;
      int depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (toks[j].text == "(" || toks[j].text == "[" || toks[j].text == "{")
          ++depth;
        else if (toks[j].text == ")" || toks[j].text == "]" ||
                 toks[j].text == "}")
          --depth;
        else if (toks[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon != 0) {
        for (size_t j = colon + 1; j < close; ++j) {
          if (!is_unordered_name(j)) continue;
          out->push_back(
              {Check::kUnorderedIteration, rule_path, toks[i].line,
               "range-for over unordered container '" + toks[j].text +
                   "': hash order must not leak into digests/metrics/exports "
                   "— iterate a sorted snapshot or ALLOW with a reason",
               false,
               {}});
          break;
        }
      }
      continue;
    }
    // Iterator walk: <unordered>.begin() / .cbegin().
    if (toks[i].kind == TokKind::kIdent && i + 2 < toks.size() &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        (is_ident(toks[i + 2], "begin") || is_ident(toks[i + 2], "cbegin")) &&
        i + 3 < toks.size() && toks[i + 3].text == "(" &&
        is_unordered_name(i)) {
      out->push_back(
          {Check::kUnorderedIteration, rule_path, toks[i].line,
           "iterator walk over unordered container '" + toks[i].text +
               "': hash order must not leak into digests/metrics/exports — "
               "iterate a sorted snapshot or ALLOW with a reason",
           false,
           {}});
    }
  }
}

// ---- check 3: guarded-by-coverage ----

struct MemberDecl {
  std::string name;
  int line = 0;
  bool guarded = false;       // LIBRA_GUARDED_BY / LIBRA_PT_GUARDED_BY
  bool is_util_mutex = false;
  bool is_std_mutex = false;
  bool exempt = false;  // const / reference / atomic / condition_variable
  /// Map template name in the declared type ("map" / "unordered_map" / ...),
  /// empty for non-map members. Includes maps nested inside other templates
  /// (a vector-of-maps member is still a map per element).
  std::string map_type;
};

struct ClassInfo {
  std::string name;
  int line = 0;
  std::vector<MemberDecl> members;
};

constexpr const char* kTypeKeywords[] = {
    "void", "int",  "long",   "short",    "char", "bool",
    "auto", "float", "double", "unsigned", "signed"};

bool is_type_keyword(const std::string& s) {
  for (const char* k : kTypeKeywords)
    if (s == k) return true;
  return false;
}

/// Classifies one class-body statement (tokens [b, e), no trailing ';').
/// Returns true when it is an instance data member.
bool classify_member(const Tokens& toks, size_t b, size_t e, bool had_body,
                     MemberDecl* out) {
  if (b >= e) return false;
  static const std::set<std::string> kSkipLead = {
      "using", "typedef", "friend", "template", "static_assert", "enum",
      "public", "private", "protected", "static", "constexpr", "operator"};
  if (kSkipLead.count(toks[b].text)) return false;
  if (had_body) return false;  // function definitions and nested types

  bool guarded = false;
  Tokens stmt;
  stmt.reserve(e - b);
  for (size_t i = b; i < e; ++i) {
    if (is_ident(toks[i], "LIBRA_GUARDED_BY") ||
        is_ident(toks[i], "LIBRA_PT_GUARDED_BY")) {
      guarded = true;
      i = skip_parens(toks, i + 1) - 1;
      continue;
    }
    // Other annotation macros (EXCLUDES/REQUIRES/ACQUIRE/...) just vanish.
    if (toks[i].kind == TokKind::kIdent &&
        toks[i].text.rfind("LIBRA_", 0) == 0 && i + 1 < e &&
        toks[i + 1].text == "(") {
      i = skip_parens(toks, i + 1) - 1;
      continue;
    }
    if (kSkipLead.count(toks[i].text) &&
        (toks[i].text == "static" || toks[i].text == "constexpr"))
      return false;
    stmt.push_back(toks[i]);
  }
  if (stmt.empty()) return false;
  if (kSkipLead.count(stmt[0].text)) return false;

  // Walk the declarator part: template args skipped, first top-level paren
  // group decides function-ness by its preceding token.
  size_t name_idx = stmt.size();  // last plain identifier before init/end
  bool is_const = false;
  bool is_ref = false;
  for (size_t i = 0; i < stmt.size(); ++i) {
    const Token& t = stmt[i];
    if (t.text == "<" && i > 0 && stmt[i - 1].kind == TokKind::kIdent) {
      const size_t after = skip_angles(stmt, i);
      if (after != i) {
        i = after - 1;
        continue;
      }
    }
    if (t.text == "=" || t.text == "{" || t.text == "[") break;
    if (t.text == "(") {
      const bool prev_is_name =
          i > 0 && stmt[i - 1].kind == TokKind::kIdent &&
          !is_type_keyword(stmt[i - 1].text);
      const bool prev_is_dtor = i > 1 && stmt[i - 2].text == "~";
      if (prev_is_name || prev_is_dtor) return false;  // function / ctor
      // Function-pointer member: void (*cb_)(int); — keep scanning inside.
      const size_t after = skip_parens(stmt, i);
      for (size_t j = i + 1; j + 1 < after; ++j)
        if (stmt[j].kind == TokKind::kIdent) name_idx = j;
      i = after - 1;
      continue;
    }
    if (is_ident(t, "const")) {
      is_const = true;
      continue;
    }
    if (t.text == "*") is_const = false;  // const applied to the pointee
    if (t.text == "&") is_ref = true;
    if (t.kind == TokKind::kIdent && !is_type_keyword(t.text) &&
        t.text != "mutable")
      name_idx = i;
  }
  if (name_idx >= stmt.size()) return false;

  out->name = stmt[name_idx].text;
  out->line = stmt[name_idx].line;
  out->guarded = guarded;
  for (size_t i = 0; i < name_idx; ++i) {
    const std::string& s = stmt[i].text;
    if (s == "Mutex") out->is_util_mutex = true;
    if (s == "mutex" && i > 0 && stmt[i - 1].text == "::")
      out->is_std_mutex = true;
    if ((s == "map" || s == "unordered_map" || s == "multimap" ||
         s == "unordered_multimap") &&
        i + 1 < stmt.size() && stmt[i + 1].text == "<" &&
        out->map_type.empty())
      out->map_type = s;
    if (s == "atomic" || s == "condition_variable" ||
        s == "condition_variable_any")
      out->exempt = true;
  }
  if (is_const || is_ref) out->exempt = true;
  return true;
}

/// Parses one class body starting at the '{' token; appends every class
/// found (including nested ones) to `classes`. Returns the index one past
/// the closing '}'.
size_t parse_class_body(const Tokens& toks, size_t open_brace,
                        const std::string& name, std::vector<ClassInfo>* classes);

/// Handles a `class`/`struct` keyword at index i (if it introduces a
/// definition); returns the index to resume scanning from.
size_t maybe_parse_class(const Tokens& toks, size_t i,
                         std::vector<ClassInfo>* classes) {
  // template <class T> / enum class: not definitions.
  if (i > 0 && (toks[i - 1].text == "<" || toks[i - 1].text == "," ||
                is_ident(toks[i - 1], "enum")))
    return i + 1;
  std::string name = "<anonymous>";
  size_t j = i + 1;
  // Attribute macros / export macros before the name are rare here; accept a
  // run of identifiers and remember the last one before '{', ':' or ';'.
  int angle_guard = 0;
  for (; j < toks.size(); ++j) {
    const std::string& s = toks[j].text;
    if (s == ";") return j + 1;  // forward declaration
    if (s == "{") break;
    if (s == "<") {  // explicit specialization args
      const size_t after = skip_angles(toks, j);
      if (after == j) return j + 1;
      j = after - 1;
      continue;
    }
    if (s == ":") {  // base clause; scan to '{'
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";")
        ++j;
      break;
    }
    if (toks[j].kind == TokKind::kIdent && s != "final" && s != "alignas")
      name = s;
    if (++angle_guard > 64) return j;  // bail on pathological input
  }
  if (j >= toks.size() || toks[j].text != "{") return i + 1;
  ClassInfo info;
  info.name = name;
  info.line = toks[i].line;
  classes->push_back(info);
  return parse_class_body(toks, j, name, classes);
}

size_t parse_class_body(const Tokens& toks, size_t open_brace,
                        const std::string& name,
                        std::vector<ClassInfo>* classes) {
  // The ClassInfo for this body is the last one pushed with this name. Keep
  // the index, not a pointer: nested definitions reallocate the vector.
  size_t self = classes->size();
  while (self > 0 && (*classes)[self - 1].name != name) --self;

  size_t i = open_brace + 1;
  size_t stmt_begin = i;
  bool stmt_had_body = false;
  while (i < toks.size() && toks[i].text != "}") {
    const std::string& s = toks[i].text;
    if (is_ident(toks[i], "class") || is_ident(toks[i], "struct") ||
        is_ident(toks[i], "union")) {
      // Nested definition (or an elaborated type in a member decl — the
      // helper returns i+1 in that case and the statement continues).
      const size_t before = i;
      size_t next = maybe_parse_class(toks, i, classes);
      if (next > before + 1) {  // consumed a definition or fwd decl
        i = next;
        if (i < toks.size() && toks[i].text == ";") ++i;
        stmt_begin = i;
        stmt_had_body = false;
        continue;
      }
      ++i;
      continue;
    }
    if ((s == "public" || s == "private" || s == "protected") &&
        i + 1 < toks.size() && toks[i + 1].text == ":") {
      i += 2;
      stmt_begin = i;
      stmt_had_body = false;
      continue;
    }
    if (s == "{") {
      const size_t after = skip_braces(toks, i);
      // Brace-init `{0}` directly after an identifier is part of a member
      // declaration; any other block is a function body / init list.
      const bool brace_init =
          i > 0 && (toks[i - 1].kind == TokKind::kIdent ||
                    toks[i - 1].text == "=");
      if (!brace_init) stmt_had_body = true;
      i = after;
      // Function definition without trailing ';' ends the statement.
      if (stmt_had_body && (i >= toks.size() || toks[i].text != ";")) {
        stmt_begin = i;
        stmt_had_body = false;
      }
      continue;
    }
    if (s == "(") {
      i = skip_parens(toks, i);
      continue;
    }
    if (s == ";") {
      if (self > 0) {
        MemberDecl m;
        if (classify_member(toks, stmt_begin, i, stmt_had_body, &m))
          (*classes)[self - 1].members.push_back(m);
      }
      ++i;
      stmt_begin = i;
      stmt_had_body = false;
      continue;
    }
    ++i;
  }
  return i < toks.size() ? i + 1 : i;
}

void check_guarded_by(const std::string& rule_path, const Tokens& toks,
                      std::vector<Finding>* out) {
  std::vector<ClassInfo> classes;
  for (size_t i = 0; i < toks.size();) {
    if (is_ident(toks[i], "class") || is_ident(toks[i], "struct") ||
        is_ident(toks[i], "union")) {
      const size_t next = maybe_parse_class(toks, i, &classes);
      i = next > i ? next : i + 1;
    } else {
      ++i;
    }
  }
  for (const ClassInfo& cls : classes) {
    bool owns_util_mutex = false;
    for (const MemberDecl& m : cls.members) {
      if (m.is_util_mutex) owns_util_mutex = true;
      if (m.is_std_mutex)
        out->push_back(
            {Check::kGuardedByCoverage, rule_path, m.line,
             "raw std::mutex member '" + m.name + "' in " + cls.name +
                 ": use util::Mutex so clang -Wthread-safety can prove the "
                 "lock discipline, or ALLOW with a reason",
             false,
             {}});
    }
    if (!owns_util_mutex) continue;
    for (const MemberDecl& m : cls.members) {
      if (m.is_util_mutex || m.is_std_mutex || m.exempt || m.guarded) continue;
      out->push_back(
          {Check::kGuardedByCoverage, rule_path, m.line,
           cls.name + " owns a util::Mutex but member '" + m.name +
               "' is not LIBRA_GUARDED_BY — annotate it, or ALLOW with the "
               "reason it is safe unguarded",
           false,
           {}});
    }
  }
}

// ---- check 6: flat-hot-path ----

void check_flat_hot_path(const std::string& rule_path, const Tokens& toks,
                         std::vector<Finding>* out) {
  std::vector<ClassInfo> classes;
  for (size_t i = 0; i < toks.size();) {
    if (is_ident(toks[i], "class") || is_ident(toks[i], "struct") ||
        is_ident(toks[i], "union")) {
      const size_t next = maybe_parse_class(toks, i, &classes);
      i = next > i ? next : i + 1;
    } else {
      ++i;
    }
  }
  for (const ClassInfo& cls : classes) {
    for (const MemberDecl& m : cls.members) {
      if (m.map_type.empty()) continue;
      out->push_back(
          {Check::kFlatHotPath, rule_path, m.line,
           "std::" + m.map_type + " member '" + m.name + "' in " + cls.name +
               ": per-decision state in the hot-path files lives in flat "
               "index-addressed vectors/slabs (DESIGN.md §5l) — use "
               "node/slot-indexed storage, or ALLOW with the reason a map is "
               "required",
           false,
           {}});
    }
  }
}

// ---- check 4: bare-assert ----

void check_bare_assert(const std::string& rule_path, const Tokens& toks,
                       std::vector<Finding>* out) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "assert") || toks[i + 1].text != "(") continue;
    if (toks[i].in_preprocessor) continue;  // #include <cassert> guards etc.
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
                  toks[i - 1].text == "::"))
      continue;  // member/namespace named assert
    out->push_back({Check::kBareAssert, rule_path, toks[i].line,
                    "bare assert() compiles out in release builds and loses "
                    "engine context — use LIBRA_AUDIT_CHECK",
                    false,
                    {}});
  }
}

// ---- check 5: ledger-narrowing ----

const std::set<std::string>& int_type_names() {
  static const std::set<std::string> kNames = {
      "int",     "long",    "short",    "size_t",  "int32_t", "int64_t",
      "uint32_t", "uint64_t", "ssize_t", "ptrdiff_t"};
  return kNames;
}

void check_ledger_narrowing(const std::string& rule_path, const Tokens& toks,
                            std::vector<Finding>* out) {
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    // float in ledger arithmetic: the conservation sums are double.
    if (is_ident(t, "float")) {
      out->push_back({Check::kLedgerNarrowing, rule_path, t.line,
                      "float in ledger arithmetic: conservation sums are "
                      "double; float rounding breaks the <= tolerance audits",
                      false,
                      {}});
      continue;
    }
    // C-style numeric cast: ( type ) expr — where '(' is not a call. A
    // preceding keyword (return, case, ...) still allows a cast position.
    static const std::set<std::string> kExprKeywords = {
        "return", "case", "else", "do", "co_return", "co_yield", "throw"};
    const bool prev_blocks_cast =
        i > 0 && ((toks[i - 1].kind == TokKind::kIdent &&
                   !kExprKeywords.count(toks[i - 1].text)) ||
                  toks[i - 1].text == ")" || toks[i - 1].text == "]" ||
                  toks[i - 1].text == ">");
    if (t.text == "(" && !prev_blocks_cast) {
      size_t j = i + 1;
      while (j < toks.size() && (is_ident(toks[j], "const") ||
                                 is_ident(toks[j], "unsigned") ||
                                 is_ident(toks[j], "signed")))
        ++j;
      if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
          (int_type_names().count(toks[j].text) || toks[j].text == "float" ||
           toks[j].text == "double" || toks[j].text == "char") &&
          j + 1 < toks.size()) {
        size_t k = j + 1;
        while (k < toks.size() && is_ident(toks[k], "long")) ++k;  // long long
        if (k < toks.size() && toks[k].text == ")" && k + 1 < toks.size() &&
            (toks[k + 1].kind == TokKind::kIdent ||
             toks[k + 1].kind == TokKind::kNumber ||
             toks[k + 1].text == "(")) {
          out->push_back({Check::kLedgerNarrowing, rule_path, t.line,
                          "C-style numeric cast in ledger arithmetic: use "
                          "static_cast so narrowing is explicit and greppable",
                          false,
                          {}});
          continue;
        }
      }
    }
    // Integer declaration initialized from double-typed ledger expressions
    // (.cpu / .mem members, floating literals) without an explicit cast.
    if (t.kind == TokKind::kIdent && int_type_names().count(t.text) &&
        !(i > 0 && (toks[i - 1].text == "<" || toks[i - 1].text == "," ||
                    toks[i - 1].text == "::")) &&
        i + 2 < toks.size() && toks[i + 1].kind == TokKind::kIdent &&
        toks[i + 2].text == "=") {
      bool has_fp = false, has_cast = false;
      for (size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j) {
        if (toks[j].kind == TokKind::kNumber &&
            (toks[j].text.find('.') != std::string::npos ||
             (toks[j].text.find('e') != std::string::npos &&
              toks[j].text.rfind("0x", 0) != 0)))
          has_fp = true;
        if ((is_ident(toks[j], "cpu") || is_ident(toks[j], "mem")) && j > 0 &&
            (toks[j - 1].text == "." || toks[j - 1].text == "->"))
          has_fp = true;
        if (is_ident(toks[j], "static_cast") || is_ident(toks[j], "lround") ||
            is_ident(toks[j], "llround") || is_ident(toks[j], "floor") ||
            is_ident(toks[j], "ceil") || is_ident(toks[j], "round"))
          has_cast = true;
      }
      if (has_fp && !has_cast)
        out->push_back(
            {Check::kLedgerNarrowing, rule_path, toks[i + 1].line,
             "integer '" + toks[i + 1].text +
                 "' initialized from double-typed ledger arithmetic without "
                 "an explicit cast — narrowing must be visible",
             false,
             {}});
    }
  }
}

}  // namespace

// ---- SymbolIndex ----

bool SymbolIndex::is_unordered_fn(const std::string& name) const {
  return unordered_fns.count(name) > 0;
}

bool SymbolIndex::is_unordered_var(const std::string& stem,
                                   const std::string& name) const {
  const auto it = unordered_vars_by_stem.find(stem);
  if (it == unordered_vars_by_stem.end()) return false;
  return std::find(it->second.begin(), it->second.end(), name) !=
         it->second.end();
}

void index_file(const std::string& rule_path, const std::string& content,
                SymbolIndex* index) {
  const LexResult lexed = lex(content);
  index_unordered(rule_path, lexed.tokens, index);
}

// ---- per-file analysis ----

std::vector<Finding> analyze_content(const std::string& rule_path,
                                     const std::string& content,
                                     const LintOptions& opt,
                                     const SymbolIndex* index) {
  std::vector<Finding> findings;
  const LexResult lexed = lex(content);
  const std::vector<Suppression> sups =
      parse_suppressions(content, &findings, rule_path);

  if (in_src(rule_path)) {
    if (enabled(opt, Check::kNondeterminismSource) && in_sim_core(rule_path))
      check_nondeterminism(rule_path, lexed.tokens, &findings);
    if (enabled(opt, Check::kUnorderedIteration))
      check_unordered_iteration(rule_path, lexed.tokens, index, &findings);
    if (enabled(opt, Check::kGuardedByCoverage))
      check_guarded_by(rule_path, lexed.tokens, &findings);
    if (enabled(opt, Check::kBareAssert))
      check_bare_assert(rule_path, lexed.tokens, &findings);
    if (enabled(opt, Check::kLedgerNarrowing) && in_ledger_files(rule_path))
      check_ledger_narrowing(rule_path, lexed.tokens, &findings);
    if (enabled(opt, Check::kFlatHotPath) && in_hot_path_files(rule_path))
      check_flat_hot_path(rule_path, lexed.tokens, &findings);
  }

  apply_suppressions(sups, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return std::string(check_name(a.check)) < check_name(b.check);
            });
  return findings;
}

}  // namespace libra::lint
