// Minimal C++ tokenizer for the lexical backend: identifiers, numbers,
// punctuation, with comments and string/char literals stripped (comments are
// collected separately for suppression parsing). Handles line ("//") and
// block ("/* */") comments, raw strings (R"delim(...)delim"), and escaped
// quotes. `::` and `->` are fused into single tokens; everything else is
// single-character punctuation. Preprocessor lines are tokenized too, with
// the in_preprocessor flag set, so checks can ignore macro definitions.
#pragma once

#include <string>
#include <vector>

namespace libra::lint {

enum class TokKind { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;
  bool in_preprocessor = false;
};

struct Comment {
  std::string text;
  int line = 1;  // line the comment starts on
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

LexResult lex(const std::string& content);

}  // namespace libra::lint
