#include "lexer.h"

#include <cctype>

namespace libra::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexResult lex(const std::string& content) {
  LexResult out;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  bool in_pp = false;        // inside a preprocessor directive line
  bool line_has_token = false;  // anything non-whitespace seen on this line

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      // A backslash-newline continues a preprocessor directive.
      if (in_pp && i > 0 && content[i - 1] == '\\') {
        ++line;
      } else {
        in_pp = false;
        ++line;
        line_has_token = false;
      }
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const size_t start = i;
      const int start_line = line;
      while (i < n && content[i] != '\n') ++i;
      out.comments.push_back({content.substr(start, i - start), start_line});
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const size_t start = i;
      const int start_line = line;
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      out.comments.push_back({content.substr(start, i - start), start_line});
      continue;
    }
    // Preprocessor directive start.
    if (c == '#' && !line_has_token) {
      in_pp = true;
      out.tokens.push_back({TokKind::kPunct, "#", line, true});
      line_has_token = true;
      ++i;
      continue;
    }
    line_has_token = true;
    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(') delim += content[j++];
      const std::string closer = ")" + delim + "\"";
      size_t end = content.find(closer, j);
      const int start_line = line;
      if (end == std::string::npos) end = n;
      else end += closer.size();
      for (size_t k = i; k < end && k < n; ++k)
        if (content[k] == '\n') ++line;
      out.tokens.push_back({TokKind::kString, "<raw>", start_line, in_pp});
      i = end;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) ++i;
        if (content[i] == '\n') ++line;  // unterminated; be forgiving
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                            "<lit>", line, in_pp});
      continue;
    }
    // Identifiers / keywords.
    if (ident_start(c)) {
      const size_t start = i;
      while (i < n && ident_char(content[i])) ++i;
      out.tokens.push_back(
          {TokKind::kIdent, content.substr(start, i - start), line, in_pp});
      continue;
    }
    // Numbers (incl. floating literals; good enough: digits, dots, exponents,
    // hex, digit separators).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      const size_t start = i;
      while (i < n && (ident_char(content[i]) || content[i] == '.' ||
                       content[i] == '\'' ||
                       ((content[i] == '+' || content[i] == '-') && i > start &&
                        (content[i - 1] == 'e' || content[i - 1] == 'E' ||
                         content[i - 1] == 'p' || content[i - 1] == 'P'))))
        ++i;
      out.tokens.push_back(
          {TokKind::kNumber, content.substr(start, i - start), line, in_pp});
      continue;
    }
    // Fused punctuation the checks rely on.
    if (c == ':' && i + 1 < n && content[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line, in_pp});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && content[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line, in_pp});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line, in_pp});
    ++i;
  }
  return out;
}

}  // namespace libra::lint
