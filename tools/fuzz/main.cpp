// libra_fuzz: differential scenario fuzzer driver.
//
//   libra_fuzz [--iterations N] [--seed S] [--artifact-dir DIR]
//              [--inject conservation|quota] [--max-shrink-rounds N]
//   libra_fuzz --replay FILE
//
// Fuzz mode generates N random-but-valid scenarios from the seed and runs
// the differential oracle on each (digest identity across sched_workers 1
// vs 4, invariant-auditor cleanliness, retry/loss accounting, cross-platform
// goodput sanity). The first failure is greedily shrunk, serialized as a
// repro artifact, and the artifact is re-parsed and re-checked to prove it
// replays to the same failure class; exit code 1.
//
// Replay mode reloads a serialized artifact bit-identically and re-runs the
// oracle: exit 0 when the scenario is clean, 1 when it still fails (the
// expected outcome when replaying a repro artifact).
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/chaos/fuzzer.h"
#include "sim/chaos/oracle.h"
#include "sim/chaos/repro.h"
#include "sim/chaos/shrinker.h"

namespace {

using libra::chaos::InjectKind;
using libra::chaos::Scenario;
using libra::chaos::ScenarioFuzzer;
using libra::chaos::Verdict;

struct Options {
  long iterations = 20;
  uint64_t seed = 1;
  std::string replay_file;
  std::string artifact_dir = ".";
  InjectKind inject = InjectKind::kNone;
  long inject_at_event = 200;
  int max_shrink_rounds = 8;
};

[[noreturn]] void usage_error(const std::string& what) {
  std::cerr << "libra_fuzz: " << what << "\n"
            << "usage: libra_fuzz [--iterations N] [--seed S]\n"
            << "                  [--artifact-dir DIR]\n"
            << "                  [--inject conservation|quota]\n"
            << "                  [--inject-at-event N]\n"
            << "                  [--max-shrink-rounds N]\n"
            << "       libra_fuzz --replay FILE\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--iterations") {
      opt.iterations = std::strtol(value().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--replay") {
      opt.replay_file = value();
    } else if (arg == "--artifact-dir") {
      opt.artifact_dir = value();
    } else if (arg == "--inject") {
      const std::string kind = value();
      if (kind == "conservation")
        opt.inject = InjectKind::kConservation;
      else if (kind == "quota")
        opt.inject = InjectKind::kTenantQuota;
      else
        usage_error("unknown --inject kind '" + kind + "'");
    } else if (arg == "--inject-at-event") {
      opt.inject_at_event = std::strtol(value().c_str(), nullptr, 10);
    } else if (arg == "--max-shrink-rounds") {
      opt.max_shrink_rounds =
          static_cast<int>(std::strtol(value().c_str(), nullptr, 10));
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }
  if (opt.iterations < 1 && opt.replay_file.empty())
    usage_error("--iterations must be >= 1");
  return opt;
}

int replay(const Options& opt) {
  std::ifstream in(opt.replay_file);
  if (!in) {
    std::cerr << "libra_fuzz: cannot open " << opt.replay_file << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Scenario sc;
  try {
    sc = libra::chaos::parse_scenario(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "libra_fuzz: parse failed: " << e.what() << "\n";
    return 2;
  }
  const Verdict v = libra::chaos::check_scenario(sc);
  if (v.ok) {
    std::cout << "replay " << opt.replay_file << ": verdict ok\n";
    return 0;
  }
  std::cout << "replay " << opt.replay_file << ": verdict " << v.failure
            << "\n  " << v.detail << "\n";
  return 1;
}

int fuzz(const Options& opt) {
  ScenarioFuzzer fuzzer(opt.seed);
  for (long i = 0; i < opt.iterations; ++i) {
    Scenario sc = fuzzer.next();
    if (opt.inject != InjectKind::kNone)
      libra::chaos::arm_injection(sc, opt.inject, opt.inject_at_event);
    const Verdict v = libra::chaos::check_scenario(sc);
    if (v.ok) {
      if ((i + 1) % 10 == 0 || i + 1 == opt.iterations)
        std::cout << "iteration " << (i + 1) << "/" << opt.iterations
                  << " clean\n";
      continue;
    }
    std::cout << "iteration " << (i + 1) << " FAILED: " << v.failure << "\n  "
              << v.detail << "\n";

    const auto shrunk =
        libra::chaos::shrink_scenario(sc, v, opt.max_shrink_rounds);
    std::cout << "shrink: " << shrunk.accepted << " reduction(s) over "
              << shrunk.rounds << " round(s)\n";

    const std::string text =
        libra::chaos::serialize_scenario(shrunk.scenario);
    std::error_code ec;
    std::filesystem::create_directories(opt.artifact_dir, ec);
    const std::string path = opt.artifact_dir + "/libra_fuzz_repro_seed" +
                             std::to_string(opt.seed) + "_iter" +
                             std::to_string(i) + ".txt";
    std::ofstream out(path);
    out << text;
    out.close();
    if (!out) {
      std::cerr << "INTERNAL: could not write repro artifact " << path << "\n";
      return 3;
    }
    std::cout << "repro artifact: " << path << "\n";

    // Close the loop: the artifact must reload bit-identically and replay
    // to the same failure class.
    const Scenario reloaded = libra::chaos::parse_scenario(text);
    if (libra::chaos::serialize_scenario(reloaded) != text) {
      std::cerr << "INTERNAL: artifact does not round-trip bit-identically\n";
      return 3;
    }
    const Verdict rv = libra::chaos::check_scenario(reloaded);
    if (rv.ok || rv.failure != v.failure) {
      std::cerr << "INTERNAL: replayed artifact verdict '"
                << (rv.ok ? std::string("ok") : rv.failure)
                << "' != original '" << v.failure << "'\n";
      return 3;
    }
    std::cout << "artifact replays to the same failure: " << rv.failure
              << "\n";
    return 1;
  }
  std::cout << opt.iterations << " iteration(s) clean (seed " << opt.seed
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    return opt.replay_file.empty() ? fuzz(opt) : replay(opt);
  } catch (const std::exception& e) {
    std::cerr << "libra_fuzz: " << e.what() << "\n";
    return 2;
  }
}
