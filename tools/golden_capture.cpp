// One-shot capture tool: prints the canonical RunMetrics digest for each
// golden-replay scenario (see tests/test_golden_replay.cpp). Run it at a
// known-good revision to (re)generate the constants the test pins. Not part
// of the default build — compile by hand against the built static libs when
// regenerating goldens.
#include <cstdio>

#include "exp/digest.h"
#include "exp/platforms.h"
#include "exp/runner.h"
#include "workload/function_catalog.h"
#include "workload/trace.h"

using namespace libra;

int main() {
  auto catalog = std::make_shared<const sim::FunctionCatalog>(
      workload::sebs_catalog());

  struct Scenario {
    const char* name;
    std::shared_ptr<sim::Policy> policy;
    sim::EngineConfig cfg;
    std::vector<sim::Invocation> trace;
  };

  const auto jet = exp::jetstream_config(8, 4);
  const auto multi4 = exp::multi_node_config(4);
  const auto trace_a = workload::multi_trace(*catalog, 120, 5);
  const auto trace_b = workload::multi_trace(*catalog, 120, 7);

  std::vector<Scenario> scenarios;
  scenarios.push_back({"default", exp::make_platform(exp::PlatformKind::kDefault, catalog), jet, trace_a});
  scenarios.push_back({"freyr", exp::make_platform(exp::PlatformKind::kFreyr, catalog), jet, trace_a});
  scenarios.push_back({"libra", exp::make_platform(exp::PlatformKind::kLibra, catalog), jet, trace_a});
  scenarios.push_back({"libra_trust", exp::make_platform(exp::PlatformKind::kLibraTrust, catalog), jet, trace_a});
  scenarios.push_back({"sched_rr", exp::make_scheduler_platform(exp::SchedulerKind::kRoundRobin, catalog), multi4, trace_b});
  scenarios.push_back({"sched_jsq", exp::make_scheduler_platform(exp::SchedulerKind::kJsq, catalog), multi4, trace_b});
  scenarios.push_back({"sched_mws", exp::make_scheduler_platform(exp::SchedulerKind::kMws, catalog), multi4, trace_b});

  for (auto& s : scenarios) {
    auto m = exp::run_experiment(s.cfg, s.policy, s.trace);
    std::printf("{\"%s\", 0x%sull},\n", s.name,
                exp::digest_hex(exp::run_metrics_digest(m)).c_str());
  }
  return 0;
}
