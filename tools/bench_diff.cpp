// bench_diff — the perf-trajectory gate (DESIGN.md §5l). Loads two
// BenchArtifact JSON files (old baseline, new run) and compares every row
// they share by name:
//
//   bench_diff OLD.json NEW.json [--tolerance FRAC]
//
// A row regresses when it moves against its direction ("lower" rows grow,
// "higher" rows shrink) by more than the tolerance fraction (default 0.30 —
// wide enough for shared CI runners, tight enough to catch a layout
// regression that doubles a hot-path cost). The direction is read from the
// OLD artifact: the baseline, not the run under test, defines what better
// means. Rows present in only one artifact are reported but never fail the
// gate — benches gain and lose rows across commits.
//
// Exit status: 0 when no shared row regressed, 1 on any regression, 2 on
// usage/IO errors (a corrupt or missing baseline must fail loudly, not
// compare as empty).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/bench_artifact.h"

using libra::exp::BenchArtifact;
using libra::exp::BenchRow;
using libra::exp::load_bench_artifact;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: bench_diff OLD.json NEW.json [--tolerance FRAC]\n"
               "  compares BenchArtifact rows by name; exits 1 when a row\n"
               "  moved against its direction by more than FRAC (default "
               "0.30)\n");
}

/// Fractional change of `now` vs `then` oriented so positive = worse.
/// "lower" rows worsen by growing, "higher" rows by shrinking.
double regression_fraction(const BenchRow& baseline, double now) {
  const double then = baseline.value;
  if (std::fabs(then) < 1e-300) return 0.0;  // degenerate baseline: skip
  const double change = (now - then) / std::fabs(then);
  return baseline.direction == "higher" ? -change : change;
}

}  // namespace

int main(int argc, char** argv) {
  std::string old_path, new_path;
  double tolerance = 0.30;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      tolerance = std::strtod(argv[i] + 12, nullptr);
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 0;
    } else if (old_path.empty()) {
      old_path = argv[i];
    } else if (new_path.empty()) {
      new_path = argv[i];
    } else {
      usage();
      return 2;
    }
  }
  if (old_path.empty() || new_path.empty() || tolerance < 0.0) {
    usage();
    return 2;
  }

  BenchArtifact baseline, current;
  try {
    baseline = load_bench_artifact(old_path);
    current = load_bench_artifact(new_path);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }

  std::printf("bench_diff: %s -> %s (tolerance %.0f%%)\n", old_path.c_str(),
              new_path.c_str(), tolerance * 100.0);
  std::printf("%-36s %14s %14s %9s  %s\n", "row", "old", "new", "change",
              "verdict");

  int regressions = 0;
  int compared = 0;
  for (const BenchRow& row : baseline.rows) {
    const BenchRow* now = current.find(row.name);
    if (!now) {
      std::printf("%-36s %14.4g %14s %9s  only in old\n", row.name.c_str(),
                  row.value, "-", "-");
      continue;
    }
    ++compared;
    const double frac = regression_fraction(row, now->value);
    const bool regressed = frac > tolerance;
    const double change =
        std::fabs(row.value) < 1e-300
            ? 0.0
            : (now->value - row.value) / std::fabs(row.value);
    std::printf("%-36s %14.4g %14.4g %+8.1f%%  %s\n", row.name.c_str(),
                row.value, now->value, change * 100.0,
                regressed ? "REGRESSED" : "ok");
    if (regressed) ++regressions;
  }
  for (const BenchRow& row : current.rows) {
    if (!baseline.find(row.name))
      std::printf("%-36s %14s %14.4g %9s  only in new\n", row.name.c_str(),
                  "-", row.value, "-");
  }

  if (compared == 0) {
    // Disjoint artifacts are a wiring bug (wrong file passed), not a clean
    // pass.
    std::fprintf(stderr,
                 "bench_diff: no shared rows between the two artifacts\n");
    return 2;
  }
  if (regressions > 0) {
    std::printf("bench_diff: %d of %d shared rows regressed beyond %.0f%%\n",
                regressions, compared, tolerance * 100.0);
    return 1;
  }
  std::printf("bench_diff: %d shared rows within tolerance\n", compared);
  return 0;
}
